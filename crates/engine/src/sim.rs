//! The simulation loop.

use crate::checkpoint::{self, Checkpoint};
use crate::config::SimConfig;
use crate::faults::FaultPlan;
use crate::policy::{ActionError, EpochCtx, FailedAction, NumaPolicy, PolicyAction};
use crate::recorder::{MetricsRecorder, MetricsSample, PageSnapshot, RunInfo};
use crate::result::{
    AttributionLedger, EpochAttribution, EpochRecord, LifetimeStats, PageMetrics, RobustnessStats,
    SimResult,
};
use crate::trace::{EpochSnap, PolicyDecision, TraceEvent, TraceSink};
use memsys::{AccessKind, AccessOutcome, MemorySystem, ServiceLevel};
use numa_topology::{CoreId, MachineSpec, NodeId};
use profiling::{
    metrics, CoreFaultTime, CycleBreakdown, EpochCounters, IbsSample, IbsSampler, PageAccessStats,
};
use vmem::{
    AddressSpace, Mapping, PageSize, SpaceError, ThpControls, Tlb, TlbLookup, VirtAddr, WalkCache,
};
use workloads::{WorkloadGen, WorkloadSpec};

/// Runs complete workloads under a policy and produces [`SimResult`]s.
pub struct Simulation;

/// Where in its lifecycle a run starts and stops (internal driver mode;
/// the public entry points each select one).
enum RunMode<'c> {
    /// Start to finish — the normal run.
    Full,
    /// Run until the boundary that closes epoch `epoch`, snapshot into
    /// `out`, and stop. No [`SimResult`] is produced and the trace sink is
    /// **not** finished — the caller threads the same sink through the
    /// subsequent [`RunMode::Resume`] phase, whose events continue exactly
    /// where this phase stopped.
    CheckpointAt {
        epoch: u32,
        out: &'c mut Option<Checkpoint>,
    },
    /// Restore state from `ckpt` and run from its epoch to completion.
    /// `restore_policy` selects whether the policy's mutable state is
    /// overwritten from the snapshot (a plain resume) or left as the caller
    /// prepared it (a fork: the caller replayed a *different* policy up to
    /// the checkpoint's boundary and wants the tail simulated under it).
    Resume {
        ckpt: &'c Checkpoint,
        restore_policy: bool,
    },
}

/// Everything the policy saw and did at one epoch boundary, handed to a
/// [`RunObserver`] before the actions are applied. The inputs are exactly
/// the values [`EpochCtx::new`] was built from (samples *after* fault
/// filtering); the outputs are everything the engine consumes from the
/// policy, plus their canonical FNV-1a fingerprint
/// ([`crate::trace::epoch_output_fingerprint`]).
pub struct EpochBoundary<'a> {
    /// Index of the epoch that just closed.
    pub epoch: u32,
    /// Counters the policy read.
    pub counters: &'a EpochCounters,
    /// IBS samples the policy read (post fault-filter).
    pub samples: &'a [IbsSample],
    /// THP switches as the boundary opened.
    pub thp: ThpControls,
    /// Previous epoch's failed actions — `Some` exactly when fault
    /// injection is active (mirrors the engine's `set_failures` call).
    pub failures: Option<&'a [FailedAction]>,
    /// Actions the policy queued, in issue order.
    pub actions: &'a [PolicyAction],
    /// Decisions the policy noted, in note order.
    pub decisions: &'a [PolicyDecision],
    /// Retries the policy recorded.
    pub retries: u64,
    /// `epoch_output_fingerprint(epoch, actions, decisions, retries)`.
    pub fingerprint: u64,
}

/// Observes a run at epoch boundaries — the hook behind the bench runner's
/// prefix-sharing fork tree. The observer receives every boundary's
/// input/output record and may request a ckpt-v1 snapshot at any boundary
/// with epoch ≥ 1 (the capture point that closes epoch `e-1` and begins
/// epoch `e`). Attaching an observer never changes simulation results: the
/// only side effect is that IBS sample storage stays on even for policies
/// that don't consume samples, which the engine already guarantees is
/// observationally neutral (the NMI count and its overhead are unchanged).
pub trait RunObserver {
    /// Called at every epoch boundary, after the policy ran and before its
    /// actions are applied.
    fn on_boundary(&mut self, b: &EpochBoundary<'_>);
    /// Whether to capture a checkpoint at the boundary beginning `epoch`.
    fn want_checkpoint(&mut self, epoch: u32) -> bool;
    /// Receives the checkpoint requested by
    /// [`RunObserver::want_checkpoint`].
    fn on_checkpoint(&mut self, ckpt: Checkpoint);
}

/// splitmix64 finalizer: a stride-proof mixing function for deterministic
/// scatter decisions.
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Splits `floor(sum(parts) / divisor)` across `parts` by prefix-sum
/// differencing: `share_i = floor(prefix_i / d) - floor(prefix_{i-1} / d)`.
///
/// The shares telescope, so they sum to `floor(total / d)` *exactly* —
/// the same integer the wall clock is charged — and each share is at
/// least `floor(part_i / d)` (floor is superadditive), so none goes
/// negative. This is how the attribution ledger keeps integer
/// conservation through the two places a divided quantity must be split
/// by cause: MLP-overlapped DRAM latency and per-thread overhead shares.
#[inline]
fn split_div<const N: usize>(parts: [u64; N], divisor: u64) -> [u64; N] {
    let d = divisor.max(1);
    let mut out = [0u64; N];
    let mut prefix = 0u64;
    let mut prev = 0u64;
    for (o, p) in out.iter_mut().zip(parts) {
        prefix += p;
        let cur = prefix / d;
        *o = cur - prev;
        prev = cur;
    }
    out
}

/// Books one data-access outcome into the ledger. DRAM outcomes are first
/// divided by the MLP `overlap` (exactly as the wall clock charges them),
/// with the quotient split across queueing / interconnect / service by
/// [`split_div`]; cache hits go to their level's bucket whole.
#[inline]
fn charge_access(b: &mut CycleBreakdown, out: &AccessOutcome, overlap: u64) {
    match out.level {
        ServiceLevel::L1 => b.cache_l1 += u64::from(out.cycles),
        ServiceLevel::L2 => b.cache_l2 += u64::from(out.cycles),
        ServiceLevel::L3 => b.cache_l3 += u64::from(out.cycles),
        ServiceLevel::Dram => {
            let q = u64::from(out.queue);
            let i = u64::from(out.inter);
            let s = u64::from(out.cycles) - q - i;
            let [pq, pi, ps] = split_div([q, i, s], overlap);
            b.ctrl_queue += pq;
            b.interconnect += pi;
            b.dram_service += ps;
        }
    }
}

/// Policy-action cycle costs by kind (so overhead attribution can name the
/// action class). `migrate + split + replicate` is the old scalar total.
#[derive(Clone, Copy, Debug, Default)]
struct ActionCosts {
    migrate: u64,
    split: u64,
    replicate: u64,
}

impl ActionCosts {
    fn total(&self) -> u64 {
        self.migrate + self.split + self.replicate
    }
}

/// The address space as the simulation state sees it: owned by the serial
/// driver, or a read-only view shared across shard lanes.
///
/// Shard lanes only run epochs the gate in `run_internal` proved fault-free
/// and replica-free, so every space operation they reach is `&self`;
/// [`SpaceRef::owned_mut`] on a shared view is a gate bug and panics.
///
/// One `SpaceRef` exists per live `SimState` — never collections of them —
/// so the variant size gap costs nothing, while boxing would put a pointer
/// chase on the per-access walk path.
#[allow(clippy::large_enum_variant)]
enum SpaceRef<'s> {
    Owned(AddressSpace),
    Shared(&'s AddressSpace),
}

impl SpaceRef<'_> {
    #[inline]
    fn get(&self) -> &AddressSpace {
        match self {
            SpaceRef::Owned(s) => s,
            SpaceRef::Shared(s) => s,
        }
    }

    #[inline]
    fn owned_mut(&mut self) -> &mut AddressSpace {
        match self {
            SpaceRef::Owned(s) => s,
            SpaceRef::Shared(_) => {
                unreachable!("shard lanes never reach an address-space mutation")
            }
        }
    }
}

struct SimState<'m, 's, 't> {
    machine: &'m MachineSpec,
    /// DRAM latency divisor from the workload's memory-level parallelism.
    mlp: u64,
    mem: MemorySystem,
    space: SpaceRef<'s>,
    /// Host-side memos of the radix walk, keyed per 2 MiB region — one per
    /// thread, so a lane's walk-cache evolution is independent of how
    /// threads are grouped into lanes (shard-count invariance). Purely a
    /// simulation-speed optimisation: the cached result replays the exact
    /// walk steps, so the per-step simulated-cache charges are unchanged.
    walk_caches: Vec<WalkCache>,
    tlbs: Vec<Tlb>,
    sampler: IbsSampler,
    page_stats: Option<PageAccessStats>,
    /// Per-core fault cycles, current epoch.
    fault_epoch: Vec<u64>,
    /// Per-core fault cycles, lifetime.
    fault_life: Vec<u64>,
    /// Lifetime L2-TLB hit-cycle cost knob.
    l2_tlb_hit_cycles: u32,
    /// Extra fault cycles per concurrently-faulting sibling this round.
    fault_contention: u64,
    threads: usize,
    /// Fault injector (inert unless the config enables it).
    faults: FaultPlan,
    /// Failure-and-recovery accounting for the run.
    robust: RobustnessStats,
    /// Trace sink, if the caller attached one ([`Simulation::run_traced`]).
    /// `None` on plain runs: no event is constructed, let alone emitted.
    trace: Option<&'t mut dyn TraceSink>,
    /// Index of the epoch currently accumulating (for event attribution).
    epoch: u32,
    /// Batched fast path enabled (default; `CARREFOUR_NO_FASTPATH=1`
    /// falls back to the per-op path, which is bit-identical).
    fast_on: bool,
    /// Epoch-scoped memo of uncached-access outcomes per
    /// `(from_node, home_node)` pair. Within an epoch the outcome is a pure
    /// function of the pair (controller and link delays only change at
    /// epoch end), so it is computed once and repeats are bulk-charged.
    /// Cleared at every epoch boundary and on any TLB shootdown.
    fast_uncached: Vec<Option<AccessOutcome>>,
    /// Per-home-node pending uncached accesses of the block in flight,
    /// flushed via [`MemorySystem::charge_uncached_n`] at block end.
    fast_pending: Vec<u64>,
    /// Node count (stride of the `fast_uncached` matrix).
    fast_nodes: usize,
    /// log2 of the L1 line size, for same-line detection.
    l1_line_shift: u32,
    /// L1 hit latency in cycles (the outcome of a stable hit).
    l1_latency: u32,
}

/// Maps a vmem error to the action-level error a policy sees.
fn action_error(e: &SpaceError) -> ActionError {
    match e {
        SpaceError::Frame(_) => ActionError::NoMemory,
        _ => ActionError::Gone,
    }
}

impl<'m, 's, 't> SimState<'m, 's, 't> {
    /// Emits one trace event. The closure only runs when a sink is
    /// attached, so untraced runs pay a single branch per call site.
    #[inline]
    fn emit(&mut self, make: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.emit(&make());
        }
    }

    /// Executes one memory operation for `thread`; returns its cycle cost.
    ///
    /// When `bd` is supplied, every cycle of the return value is also
    /// booked into exactly one of its buckets (the conservation
    /// invariant); `None` — the default — skips all attribution work.
    #[inline]
    fn run_op(
        &mut self,
        thread: usize,
        op: workloads::Op,
        faulting_threads: usize,
        mut bd: Option<&mut CycleBreakdown>,
    ) -> u64 {
        let vaddr = VirtAddr(op.vaddr);
        let core = CoreId::from(thread);
        let node = self.machine.node_of_core(core);
        let mut cycles: u64 = 0;
        let mut walk_remote: u8 = 0;

        // 1. Address translation.
        let mapping = match self.tlbs[thread].lookup(vaddr) {
            TlbLookup::HitL1(m) => m,
            TlbLookup::HitL2(m) => {
                cycles += u64::from(self.l2_tlb_hit_cycles);
                if let Some(b) = bd.as_deref_mut() {
                    b.tlb_lookup += u64::from(self.l2_tlb_hit_cycles);
                }
                m
            }
            TlbLookup::Miss => {
                cycles += u64::from(self.l2_tlb_hit_cycles);
                if let Some(b) = bd.as_deref_mut() {
                    b.tlb_lookup += u64::from(self.l2_tlb_hit_cycles);
                }
                let (m, remote) = self.walk_and_maybe_fault(
                    thread,
                    vaddr,
                    node,
                    faulting_threads,
                    &mut cycles,
                    bd.as_deref_mut(),
                );
                walk_remote = remote;
                self.tlbs[thread].insert(m);
                m
            }
        };

        // 1b. Replication: readers use their local replica; a store to a
        // replicated page collapses the replica set first.
        let mapping = if self.space.get().has_replicas() && mapping.size == PageSize::Size4K {
            if op.is_write && self.space.get().is_replicated(mapping.vbase) {
                let collapse = self.space.owned_mut().collapse_replicas(mapping.vbase);
                cycles += collapse;
                if let Some(b) = bd.as_deref_mut() {
                    b.replica_collapse += collapse;
                }
                self.shootdown(mapping.vbase, mapping.size);
                let epoch = self.epoch;
                self.emit(|| TraceEvent::ReplicaCollapse {
                    epoch,
                    vbase: mapping.vbase.0,
                });
                mapping
            } else {
                self.space.get().resolve_replica(mapping, node)
            }
        } else {
            mapping
        };

        // 2. Data access through the memory hierarchy. Stores to line-shared
        // data bypass the caches: coherence pushes them to the home node.
        let out = if op.coherent_store {
            self.mem.access_uncached(core, mapping.node)
        } else {
            let paddr = mapping.translate(vaddr);
            self.mem
                .access(core, paddr.0, mapping.node, AccessKind::Data)
        };
        if out.dram() {
            // Prefetchers hide sequential latency; independent misses
            // overlap by the workload's MLP. Requests still occupy the
            // controller either way (counted above).
            let overlap = if op.prefetched { 4 } else { self.mlp };
            cycles += u64::from(out.cycles) / overlap;
            if let Some(b) = bd.as_deref_mut() {
                charge_access(b, &out, overlap);
            }
        } else {
            cycles += u64::from(out.cycles);
            if let Some(b) = bd {
                charge_access(b, &out, 1);
            }
        }

        // 3. Observation channels.
        self.sampler.observe(|| IbsSample {
            vaddr,
            accessing_node: node,
            thread: thread as u16,
            home_node: mapping.node,
            from_dram: out.dram(),
            is_store: op.is_write,
            page_size: mapping.size,
            walk_remote_steps: walk_remote,
        });
        if let Some(stats) = self.page_stats.as_mut() {
            stats.record(vaddr, thread as u16);
        }
        cycles
    }

    /// Hardware page-table walk, servicing a demand fault if needed.
    /// Returns the walked mapping and the number of walk steps that were
    /// served by a *remote* table frame (after Mitosis replica
    /// substitution) — the signal numaPTE-style policies consume via IBS.
    ///
    /// With `bd` supplied, step-replay cycles are booked by walk-cache
    /// outcome (`walk_pwc_hit_*` when the region's upper levels were
    /// memoized, `walk_pwc_miss_*` for a full walk — the paging-structure-
    /// cache distinction), split by whether the table frame serving each
    /// step is local or remote to the walking core; fault handling goes to
    /// `fault`.
    fn walk_and_maybe_fault(
        &mut self,
        thread: usize,
        vaddr: VirtAddr,
        node: NodeId,
        faulting_threads: usize,
        cycles: &mut u64,
        mut bd: Option<&mut CycleBreakdown>,
    ) -> (Mapping, u8) {
        let core = CoreId::from(thread);
        let hits_before = self.walk_caches[thread].hits();
        let walk = {
            let Self {
                space, walk_caches, ..
            } = self;
            space.get().walk_cached(vaddr, &mut walk_caches[thread])
        };
        let pwc_hit = self.walk_caches[thread].hits() > hits_before;
        // Replicated page tables serve the walk from the walking node's
        // copy: substitute each step before it is charged. The walk cache
        // stays node-agnostic (it memoizes the primary steps), so the
        // substitution happens at charge time on both the cached and
        // uncached paths identically.
        let treps = self.space.get().has_table_replicas();
        // Every step address is known before any is charged: prefetch all
        // their cache sets (host-side only, no simulated effect) so the
        // random, usually host-cold set loads overlap instead of
        // serializing through the replay loop below. The caller's data
        // access follows right after the walk, and its physical address is
        // already determined by the walked mapping — warm its sets too,
        // with the whole step replay as the overlap window.
        for &step in walk.steps() {
            let s = if treps {
                self.space.get().resolve_table_step(step, node)
            } else {
                step
            };
            self.mem.prefetch_access(core, s.pte_addr.0);
        }
        if let Some(m) = walk.mapping {
            self.mem.prefetch_access(core, m.translate(vaddr).0);
        }
        let mut remote_steps: u8 = 0;
        for &step in walk.steps() {
            let s = if treps {
                self.space.get().resolve_table_step(step, node)
            } else {
                step
            };
            let local = s.node == node;
            if !local {
                remote_steps += 1;
            }
            let out = self
                .mem
                .access(core, s.pte_addr.0, s.node, AccessKind::PageWalk);
            *cycles += u64::from(out.cycles);
            if let Some(b) = bd.as_deref_mut() {
                match (pwc_hit, local) {
                    (true, true) => b.walk_pwc_hit_local += u64::from(out.cycles),
                    (true, false) => b.walk_pwc_hit_remote += u64::from(out.cycles),
                    (false, true) => b.walk_pwc_miss_local += u64::from(out.cycles),
                    (false, false) => b.walk_pwc_miss_remote += u64::from(out.cycles),
                }
            }
        }
        if let Some(m) = walk.mapping {
            return (m, remote_steps);
        }
        // Demand fault: allocation plus lock contention from siblings
        // faulting in the same interval. Contention saturates: past ~48
        // waiters the page-table/zone locks queue rather than keep growing.
        // The fault plan can veto huge allocations (THP compaction failure)
        // and, under injected memory pressure, answer a true allocation
        // failure by reclaiming reserved frames; OOM on a fault-free run is
        // still a configuration error at our scaled footprints.
        let fault = {
            let Self { space, faults, .. } = &mut *self;
            let space = space.owned_mut();
            loop {
                match space.fault_gated(vaddr, node, faults) {
                    Ok(f) => break f,
                    Err(e) => {
                        if !faults.reclaim_one(space) {
                            panic!("fault at {vaddr} failed: {e}");
                        }
                    }
                }
            }
        };
        let contenders = faulting_threads.saturating_sub(1).min(48) as u64;
        let contention = self.fault_contention * contenders;
        let cost = fault.cycles + contention;
        *cycles += cost;
        if let Some(b) = bd {
            b.fault += cost;
        }
        self.fault_epoch[thread] += cost;
        self.fault_life[thread] += cost;
        let epoch = self.epoch;
        self.emit(|| TraceEvent::PageFault {
            epoch,
            vbase: fault.mapping.vbase.0,
            size: fault.mapping.size,
            node: fault.mapping.node.0,
            thread: thread as u16,
        });
        (fault.mapping, remote_steps)
    }

    /// Invalidates one page's entry in every core's TLB (shootdown).
    fn shootdown(&mut self, vbase: VirtAddr, size: PageSize) {
        for t in &mut self.tlbs {
            t.invalidate(vbase, size);
        }
        // A shootdown accompanies every remap (split, migration, replica
        // collapse), any of which can change a page's home node. The memo
        // itself only depends on epoch-constant delays, but dropping it
        // here keeps the invalidation rule simple: any remap, any epoch
        // boundary.
        self.fast_uncached.fill(None);
    }

    /// Executes a batch of operations for `thread`; returns their total
    /// cycle cost. The batched equivalent of per-op [`SimState::run_op`]
    /// calls — bit-identical by construction (see DESIGN.md §10):
    ///
    /// * **Uncached stores** — within an epoch, controller queueing and
    ///   link congestion delays are constant, so the outcome of an
    ///   uncached access is a pure function of `(from_node, home_node)`.
    ///   The first one is computed via [`MemorySystem::peek_uncached`] and
    ///   memoized; repeats are counted and bulk-charged at block end with
    ///   [`MemorySystem::charge_uncached_n`] (counters are sums, so order
    ///   does not matter within the epoch).
    /// * **Stable L1 hits** — after any data access, the accessed line is
    ///   the MRU way of this core's L1 (hits rotate to front, misses fill
    ///   at front). A consecutive access to the same line by the same
    ///   core with no intervening hierarchy activity is therefore an L1
    ///   hit that changes nothing but the hit counter; such repeats are
    ///   charged `l1_latency` directly and the counter is bulk-added at
    ///   block end. A page walk runs hierarchy accesses on this core, so
    ///   it ends the run.
    /// * **IBS skip-ahead** — the sampler countdown is mirrored in a
    ///   local; unsampled ops are batched into one
    ///   [`IbsSampler::advance_unsampled`] and the sample fires via
    ///   [`IbsSampler::take_sample`] at exactly the op index where
    ///   [`IbsSampler::observe`] would have fired it.
    fn run_block(
        &mut self,
        thread: usize,
        ops: &[workloads::Op],
        faulting_threads: usize,
        mut bd: Option<&mut CycleBreakdown>,
    ) -> u64 {
        if !self.fast_on {
            let mut c: u64 = 0;
            for &op in ops {
                c += self.run_op(thread, op, faulting_threads, bd.as_deref_mut());
            }
            return c;
        }
        let core = CoreId::from(thread);
        let node = self.machine.node_of_core(core);
        let nodes = self.fast_nodes;
        let line_shift = self.l1_line_shift;
        let mut cycles_total: u64 = 0;
        // IBS skip-ahead locals, synced at sample points and at block end.
        let mut until = self.sampler.until_next();
        let period = self.sampler.period();
        let mut unsampled: u64 = 0;
        // The line currently at the MRU way of this core's L1, if known.
        let mut stable_line: Option<u64> = None;
        let mut pending_l1: u64 = 0;

        for &op in ops {
            let vaddr = VirtAddr(op.vaddr);
            let mut cycles: u64 = 0;
            let mut walk_remote: u8 = 0;

            // 1. Address translation (identical to run_op).
            let mapping = match self.tlbs[thread].lookup(vaddr) {
                TlbLookup::HitL1(m) => m,
                TlbLookup::HitL2(m) => {
                    cycles += u64::from(self.l2_tlb_hit_cycles);
                    if let Some(b) = bd.as_deref_mut() {
                        b.tlb_lookup += u64::from(self.l2_tlb_hit_cycles);
                    }
                    m
                }
                TlbLookup::Miss => {
                    cycles += u64::from(self.l2_tlb_hit_cycles);
                    if let Some(b) = bd.as_deref_mut() {
                        b.tlb_lookup += u64::from(self.l2_tlb_hit_cycles);
                    }
                    let (m, remote) = self.walk_and_maybe_fault(
                        thread,
                        vaddr,
                        node,
                        faulting_threads,
                        &mut cycles,
                        bd.as_deref_mut(),
                    );
                    walk_remote = remote;
                    self.tlbs[thread].insert(m);
                    // The walk probed the hierarchy on this core: the L1's
                    // MRU way may have changed.
                    stable_line = None;
                    m
                }
            };

            // 1b. Replication (identical to run_op).
            let mapping = if self.space.get().has_replicas() && mapping.size == PageSize::Size4K {
                if op.is_write && self.space.get().is_replicated(mapping.vbase) {
                    let collapse = self.space.owned_mut().collapse_replicas(mapping.vbase);
                    cycles += collapse;
                    if let Some(b) = bd.as_deref_mut() {
                        b.replica_collapse += collapse;
                    }
                    self.shootdown(mapping.vbase, mapping.size);
                    stable_line = None;
                    let epoch = self.epoch;
                    self.emit(|| TraceEvent::ReplicaCollapse {
                        epoch,
                        vbase: mapping.vbase.0,
                    });
                    mapping
                } else {
                    self.space.get().resolve_replica(mapping, node)
                }
            } else {
                mapping
            };

            // 2. Data access, memoized where the replay is idempotent.
            let out = if op.coherent_store {
                let key = node.index() * nodes + mapping.node.index();
                let out = match self.fast_uncached[key] {
                    Some(o) => o,
                    None => {
                        let o = self.mem.peek_uncached(core, mapping.node);
                        self.fast_uncached[key] = Some(o);
                        o
                    }
                };
                self.fast_pending[mapping.node.index()] += 1;
                out
            } else {
                let paddr = mapping.translate(vaddr);
                let line = paddr.0 >> line_shift;
                if stable_line == Some(line) {
                    pending_l1 += 1;
                    AccessOutcome {
                        cycles: self.l1_latency,
                        level: ServiceLevel::L1,
                        from_node: node,
                        home_node: mapping.node,
                        queue: 0,
                        inter: 0,
                    }
                } else {
                    let out = self
                        .mem
                        .access(core, paddr.0, mapping.node, AccessKind::Data);
                    stable_line = Some(line);
                    out
                }
            };
            if out.dram() {
                let overlap = if op.prefetched { 4 } else { self.mlp };
                cycles += u64::from(out.cycles) / overlap;
                if let Some(b) = bd.as_deref_mut() {
                    charge_access(b, &out, overlap);
                }
            } else {
                cycles += u64::from(out.cycles);
                if let Some(b) = bd.as_deref_mut() {
                    charge_access(b, &out, 1);
                }
            }

            // 3. Observation channels.
            if until == 1 {
                self.sampler.advance_unsampled(unsampled);
                unsampled = 0;
                self.sampler.take_sample(|| IbsSample {
                    vaddr,
                    accessing_node: node,
                    thread: thread as u16,
                    home_node: mapping.node,
                    from_dram: out.dram(),
                    is_store: op.is_write,
                    page_size: mapping.size,
                    walk_remote_steps: walk_remote,
                });
                until = period;
            } else {
                until -= 1;
                unsampled += 1;
            }
            if let Some(stats) = self.page_stats.as_mut() {
                stats.record(vaddr, thread as u16);
            }
            cycles_total += cycles;
        }

        // Flush the block's bulk charges.
        self.sampler.advance_unsampled(unsampled);
        if pending_l1 > 0 {
            self.mem.charge_l1_hits_n(core, pending_l1);
        }
        for home in 0..nodes {
            let n = self.fast_pending[home];
            if n > 0 {
                self.fast_pending[home] = 0;
                self.mem.charge_uncached_n(core, NodeId::from(home), n);
            }
        }
        cycles_total
    }

    /// Applies policy actions; returns (migrations, splits, costs), the
    /// cycle costs split by action kind for the attribution ledger
    /// (`ActionCosts::total()` is the old opaque cost sum, unchanged).
    ///
    /// Failures — injected busy pins as well as genuine vmem refusals —
    /// are appended to `failures` and tallied in the run's
    /// [`RobustnessStats`]. Pre-existing behaviour note: a vmem refusal of
    /// a stale action (page already split, wrong size class) was always
    /// silently skipped; it is now *recorded* as failed, which changes
    /// accounting but not simulation state.
    fn apply_actions(
        &mut self,
        actions: Vec<PolicyAction>,
        failures: &mut Vec<FailedAction>,
    ) -> (u64, u64, ActionCosts) {
        let mut migrations = 0;
        let mut splits = 0;
        let mut costs = ActionCosts::default();
        let epoch = self.epoch;
        for a in actions {
            match a {
                PolicyAction::SetThpAlloc(b) => {
                    self.space.owned_mut().thp_mut().alloc_2m = b;
                    self.emit(|| TraceEvent::ThpToggle {
                        epoch,
                        knob: "alloc",
                        on: b,
                    });
                }
                PolicyAction::SetThpPromote(b) => {
                    self.space.owned_mut().thp_mut().promote_2m = b;
                    if b {
                        // Re-enabling promotion lifts the no-collapse marks
                        // left by earlier policy splits.
                        self.space.owned_mut().clear_promote_inhibitions();
                    }
                    self.emit(|| TraceEvent::ThpToggle {
                        epoch,
                        knob: "promote",
                        on: b,
                    });
                }
                PolicyAction::Split(v) => {
                    if self.faults.check_busy(v) {
                        self.robust.failed_splits += 1;
                        failures.push(FailedAction {
                            action: a,
                            error: ActionError::Busy,
                        });
                        continue;
                    }
                    match self.space.owned_mut().split(VirtAddr(v)) {
                        Ok((old, c)) => {
                            self.shootdown(old.vbase, old.size);
                            splits += 1;
                            costs.split += c;
                            self.emit(|| TraceEvent::Split {
                                epoch,
                                vbase: old.vbase.0,
                                size: old.size,
                                scatter: false,
                                scattered: 0,
                            });
                        }
                        Err(e) => {
                            self.robust.failed_splits += 1;
                            failures.push(FailedAction {
                                action: a,
                                error: action_error(&e),
                            });
                        }
                    }
                }
                PolicyAction::SplitScatter(v) => {
                    if self.faults.check_busy(v) {
                        self.robust.failed_splits += 1;
                        failures.push(FailedAction {
                            action: a,
                            error: ActionError::Busy,
                        });
                        continue;
                    }
                    match self.space.owned_mut().split(VirtAddr(v)) {
                        Ok((old, c)) => {
                            self.shootdown(old.vbase, old.size);
                            splits += 1;
                            // One batched demote-and-spread: the split cost
                            // plus one huge-page-worth of copying, not 512
                            // separate migration calls.
                            costs.split += c + self.space.get().costs().copy_per_kib
                                * (old.size.bytes() >> 10);
                            let nodes = self.machine.num_nodes() as u64;
                            let children = old.size.fanout();
                            // invariant: split() only succeeds on huge
                            // mappings, and every huge size has a smaller.
                            let small = old.size.smaller().expect("huge page splits");
                            let mut moved: u64 = 0;
                            for i in 0..children {
                                let sub = VirtAddr(old.vbase.0 + i * small.bytes());
                                // Deterministic hash spread: independent of
                                // any stride the data layout might have.
                                let node = NodeId::from((mix64(sub.0) % nodes) as usize);
                                match self.space.owned_mut().migrate(sub, node) {
                                    Ok((sold, _)) => {
                                        self.shootdown(sold.vbase, sold.size);
                                        migrations += 1;
                                        moved += 1;
                                    }
                                    // Sub-page moves of a batched scatter are
                                    // best-effort (the page is already split):
                                    // counted, but not fed back for retry.
                                    Err(_) => self.robust.failed_migrations += 1,
                                }
                            }
                            // One event for the whole batched operation —
                            // 512 child-move events would drown the trace.
                            self.emit(|| TraceEvent::Split {
                                epoch,
                                vbase: old.vbase.0,
                                size: old.size,
                                scatter: true,
                                scattered: moved,
                            });
                        }
                        Err(e) => {
                            self.robust.failed_splits += 1;
                            failures.push(FailedAction {
                                action: a,
                                error: action_error(&e),
                            });
                        }
                    }
                }
                PolicyAction::Replicate(v) => {
                    match self
                        .space
                        .owned_mut()
                        .replicate(VirtAddr(v), self.machine.num_nodes())
                    {
                        Ok(c) => {
                            if c > 0 {
                                if let Some(m) = self.space.get().translate(VirtAddr(v)) {
                                    self.shootdown(m.vbase, m.size);
                                }
                                migrations += 1; // replica copies count as moves
                                costs.replicate += c;
                                self.emit(|| TraceEvent::Replication { epoch, vbase: v });
                            }
                        }
                        Err(e) => {
                            self.robust.failed_replications += 1;
                            failures.push(FailedAction {
                                action: a,
                                error: action_error(&e),
                            });
                        }
                    }
                }
                PolicyAction::ReplicateTables => {
                    // Idempotent sweep: after the first epoch only tables
                    // created since (by later faults/splits) are copied, so
                    // re-issuing it every epoch is cheap. Alloc failures
                    // skip nodes silently — the walk keeps reading the
                    // primary there, which is correct, just slower.
                    let (created, c) = self
                        .space
                        .owned_mut()
                        .replicate_tables(self.machine.num_nodes());
                    if created > 0 {
                        migrations += created; // replica copies count as moves
                        costs.replicate += c;
                        self.emit(|| TraceEvent::TableReplication {
                            epoch,
                            tables: created,
                        });
                    }
                }
                PolicyAction::MigrateTables(v, node) => {
                    if self.faults.check_busy(v) {
                        self.robust.failed_migrations += 1;
                        failures.push(FailedAction {
                            action: a,
                            error: ActionError::Busy,
                        });
                        continue;
                    }
                    match self.space.owned_mut().migrate_table(VirtAddr(v), node) {
                        Ok((Some(from), c)) => {
                            // The rehome bumped the walk-cache generation;
                            // leaf translations are untouched, so data TLBs
                            // need no shootdown.
                            migrations += 1;
                            costs.migrate += c;
                            self.emit(|| TraceEvent::TableMigration {
                                epoch,
                                vbase: v,
                                from: from.0,
                                to: node.0,
                            });
                        }
                        Ok((None, _)) => {}
                        Err(e) => {
                            self.robust.failed_migrations += 1;
                            failures.push(FailedAction {
                                action: a,
                                error: action_error(&e),
                            });
                        }
                    }
                }
                PolicyAction::Migrate(v, node) => {
                    if self.faults.check_busy(v) {
                        self.robust.failed_migrations += 1;
                        failures.push(FailedAction {
                            action: a,
                            error: ActionError::Busy,
                        });
                        continue;
                    }
                    match self.space.owned_mut().migrate(VirtAddr(v), node) {
                        Ok((old, c)) => {
                            if c > 0 {
                                self.shootdown(old.vbase, old.size);
                                migrations += 1;
                                costs.migrate += c;
                                self.emit(|| TraceEvent::Migration {
                                    epoch,
                                    vbase: old.vbase.0,
                                    size: old.size,
                                    from: old.node.0,
                                    to: node.0,
                                });
                            }
                        }
                        Err(e) => {
                            self.robust.failed_migrations += 1;
                            failures.push(FailedAction {
                                action: a,
                                error: action_error(&e),
                            });
                        }
                    }
                }
            }
        }
        (migrations, splits, costs)
    }
}

impl Simulation {
    /// Runs `spec` on `machine` under `policy` and returns the results.
    ///
    /// The run is fully deterministic in `(spec, config.seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the spec has more threads than the machine has cores, or if
    /// the machine runs out of physical memory (a configuration error at our
    /// scaled footprints).
    pub fn run(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
    ) -> SimResult {
        Simulation::run_with_setup_traced(machine, spec, config, policy, |_| {}, None)
    }

    /// Like [`Simulation::run`], but streams every simulation event into
    /// `sink`. Tracing is purely observational: the returned [`SimResult`]
    /// is bit-identical to an untraced run of the same inputs.
    pub fn run_traced(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        sink: &mut dyn TraceSink,
    ) -> SimResult {
        Simulation::run_with_setup_traced(machine, spec, config, policy, |_| {}, Some(sink))
    }

    /// Like [`Simulation::run`], but calls `setup` on the freshly built
    /// address space before the workload starts — for experiments that need
    /// pre-conditions such as deliberately fragmented physical memory.
    pub fn run_with_setup(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        setup: impl FnOnce(&mut AddressSpace),
    ) -> SimResult {
        Simulation::run_with_setup_traced(machine, spec, config, policy, setup, None)
    }

    /// The full-featured entry point: optional address-space `setup` and an
    /// optional trace `sink` ([`Simulation::run`], [`Simulation::run_traced`]
    /// and [`Simulation::run_with_setup`] all delegate here).
    pub fn run_with_setup_traced(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        setup: impl FnOnce(&mut AddressSpace),
        sink: Option<&mut dyn TraceSink>,
    ) -> SimResult {
        Simulation::run_internal(
            machine,
            spec,
            config,
            policy,
            setup,
            sink,
            None,
            None,
            RunMode::Full,
        )
        .expect("a full run always produces a result")
    }

    /// Like [`Simulation::run_traced`] (the `sink` is optional), with a
    /// [`RunObserver`] attached: the observer sees every epoch boundary's
    /// policy inputs/outputs and may capture checkpoints at boundaries.
    /// Results are bit-identical to an unobserved run.
    pub fn run_observed(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        sink: Option<&mut dyn TraceSink>,
        observer: &mut dyn RunObserver,
    ) -> SimResult {
        Simulation::run_internal(
            machine,
            spec,
            config,
            policy,
            |_| {},
            sink,
            Some(observer),
            None,
            RunMode::Full,
        )
        .expect("a full run always produces a result")
    }

    /// Like [`Simulation::run_traced`] (the `sink` is optional), with a
    /// [`crate::MetricsRecorder`] attached: the recorder receives one
    /// [`crate::MetricsSample`] per epoch boundary — the flight recorder's
    /// per-epoch time-series (DESIGN.md §16). Recording is purely
    /// observational: the returned [`SimResult`] (ledger and trace digest
    /// included) is bit-identical to an unrecorded run of the same inputs,
    /// which `carrefour-bench/tests/metrics_equivalence.rs` proptests.
    pub fn run_recorded(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        sink: Option<&mut dyn TraceSink>,
        recorder: &mut dyn MetricsRecorder,
    ) -> SimResult {
        Simulation::run_internal(
            machine,
            spec,
            config,
            policy,
            |_| {},
            sink,
            None,
            Some(recorder),
            RunMode::Full,
        )
        .expect("a full run always produces a result")
    }

    /// Runs like [`Simulation::run`] until the epoch boundary that begins
    /// epoch `epoch`, then snapshots into a [`Checkpoint`] and stops —
    /// [`Simulation::resume`] continues from it bit-identically. Returns
    /// `None` when the run completes before reaching `epoch` (the run then
    /// executed in full; no snapshot exists).
    pub fn checkpoint_at(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        epoch: u32,
    ) -> Option<Checkpoint> {
        Simulation::checkpoint_at_traced(machine, spec, config, policy, |_| {}, None, epoch)
    }

    /// [`Simulation::checkpoint_at`] with address-space `setup` and a trace
    /// `sink`. When a checkpoint is taken the sink is **not** finished:
    /// thread the same sink through [`Simulation::resume_traced`] and the
    /// combined event stream (and digest) equals an uninterrupted traced
    /// run's.
    pub fn checkpoint_at_traced(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        setup: impl FnOnce(&mut AddressSpace),
        sink: Option<&mut dyn TraceSink>,
        epoch: u32,
    ) -> Option<Checkpoint> {
        let mut out = None;
        Simulation::run_internal(
            machine,
            spec,
            config,
            policy,
            setup,
            sink,
            None,
            None,
            RunMode::CheckpointAt {
                epoch,
                out: &mut out,
            },
        );
        out
    }

    /// Continues a run from `ckpt` to completion. The checkpoint must come
    /// from the same machine/spec/config (asserted via its fingerprint), and
    /// `policy` must be a freshly constructed instance of the same policy —
    /// its mutable state is restored via [`NumaPolicy::restore_state`]. The
    /// result is bit-identical to an uninterrupted run's.
    pub fn resume(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        ckpt: &Checkpoint,
    ) -> SimResult {
        Simulation::resume_traced(machine, spec, config, policy, |_| {}, None, ckpt)
    }

    /// [`Simulation::resume`] with `setup` and a trace `sink`; the events
    /// emitted continue exactly where the checkpointing phase stopped.
    pub fn resume_traced(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        setup: impl FnOnce(&mut AddressSpace),
        sink: Option<&mut dyn TraceSink>,
        ckpt: &Checkpoint,
    ) -> SimResult {
        Simulation::run_internal(
            machine,
            spec,
            config,
            policy,
            setup,
            sink,
            None,
            None,
            RunMode::Resume {
                ckpt,
                restore_policy: true,
            },
        )
        .expect("a resumed run always produces a result")
    }

    /// Continues a run from `ckpt` under a policy whose state the *caller*
    /// prepared — the fork half of the runner's prefix-sharing tree. Unlike
    /// [`Simulation::resume`], the policy's mutable state is **not**
    /// restored from the snapshot: `policy` must already be in the state a
    /// policy has after exactly `ckpt.epoch()` `on_epoch` calls (epochs
    /// `0..ckpt.epoch()`), which the fork tree establishes by replaying the
    /// recorded boundary inputs against a freshly constructed instance.
    /// Everything else (address space, caches, sampler, fault state, RNGs)
    /// is restored from the snapshot as usual.
    pub fn resume_forked(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        ckpt: &Checkpoint,
    ) -> SimResult {
        Simulation::resume_forked_traced(machine, spec, config, policy, None, ckpt)
    }

    /// [`Simulation::resume_forked`] with a trace `sink`; events continue
    /// from the checkpoint's boundary exactly as [`Simulation::resume_traced`]'s do.
    pub fn resume_forked_traced(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        sink: Option<&mut dyn TraceSink>,
        ckpt: &Checkpoint,
    ) -> SimResult {
        Simulation::run_internal(
            machine,
            spec,
            config,
            policy,
            |_| {},
            sink,
            None,
            None,
            RunMode::Resume {
                ckpt,
                restore_policy: false,
            },
        )
        .expect("a resumed run always produces a result")
    }

    /// The single driver behind every public entry point; `mode` selects
    /// where the run starts (fresh or from a snapshot) and whether it stops
    /// early at a checkpoint boundary. Returns `None` exactly when a
    /// requested checkpoint was taken.
    #[allow(clippy::too_many_arguments)]
    fn run_internal(
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &SimConfig,
        policy: &mut dyn NumaPolicy,
        setup: impl FnOnce(&mut AddressSpace),
        sink: Option<&mut dyn TraceSink>,
        mut observer: Option<&mut dyn RunObserver>,
        mut recorder: Option<&mut dyn MetricsRecorder>,
        mut mode: RunMode<'_>,
    ) -> Option<SimResult> {
        assert!(
            spec.threads <= machine.total_cores(),
            "workload wants {} threads, machine has {} cores",
            spec.threads,
            machine.total_cores()
        );

        let mut gen = WorkloadGen::new(spec, config.seed);
        let mut space = AddressSpace::new(machine, config.vmem);
        for r in &spec.regions {
            // Overlapping or unaligned regions are a workload-spec bug, not
            // a runtime condition: fail loudly before the run starts.
            space
                .map_region(r.base, r.bytes)
                .unwrap_or_else(|e| panic!("region setup failed: {e}"));
        }
        setup(&mut space);

        // Kill-switch for the batched fast path: results are bit-identical
        // either way (proptest-enforced), so the per-op path exists only
        // for debugging and differential testing.
        let fast_on = std::env::var("CARREFOUR_NO_FASTPATH").map_or(true, |v| v != "1");
        let nodes = machine.num_nodes();
        let mut st = SimState {
            machine,
            mlp: u64::from(spec.mlp.max(1)),
            mem: MemorySystem::new(machine, config.memsys.clone()),
            space: SpaceRef::Owned(space),
            walk_caches: (0..spec.threads).map(|_| WalkCache::new()).collect(),
            tlbs: (0..spec.threads)
                .map(|_| Tlb::new(&config.vmem.tlb))
                .collect(),
            sampler: IbsSampler::new(machine.num_nodes(), config.ibs),
            page_stats: config.track_page_stats.then(PageAccessStats::new),
            fault_epoch: vec![0; spec.threads],
            fault_life: vec![0; spec.threads],
            l2_tlb_hit_cycles: config.vmem.tlb.l2_hit_cycles,
            fault_contention: config.vmem.costs.fault_contention_per_thread,
            threads: spec.threads,
            faults: FaultPlan::new(&config.faults),
            robust: RobustnessStats::default(),
            trace: sink,
            epoch: 0,
            fast_on,
            fast_uncached: vec![None; nodes * nodes],
            fast_pending: vec![0; nodes],
            fast_nodes: nodes,
            l1_line_shift: config.memsys.l1.line_bytes.trailing_zeros(),
            l1_latency: config.memsys.l1_latency,
        };
        // A policy that never reads samples (and no fault filter to feed)
        // makes sample storage dead work: elide it. The NMI count and its
        // overhead are unchanged, so results are bit-identical. An attached
        // observer needs the stored samples (its boundary records feed
        // sibling policies that may consume them), so it keeps storage on —
        // which, per the same argument, never changes results.
        if !policy.consumes_samples() && !st.faults.is_active() && observer.is_none() {
            st.sampler.set_store(false);
        }
        let total_rounds = gen.total_rounds();
        let think = u64::from(spec.think_cycles_per_op);

        // Shard-lane plan. The natural shard grain is the NUMA node group:
        // thread t runs on core t, cores are numbered node-major, and both
        // the L3 and the IBS sample store are per-node, so grouping threads
        // by node keeps every piece of cache/sampler state owned by exactly
        // one lane. An explicit count (env var beats config) is capped at
        // the node-group count; auto (0) asks the process-wide lane pool at
        // every epoch boundary, so lanes donated mid-suite are picked up at
        // the next chunk. The lane count NEVER affects results — only how
        // many OS threads compute them (DESIGN.md §14).
        let shard_request = env_override_u32("CARREFOUR_SHARDS").unwrap_or(config.shards);
        let node_groups = lane_node_groups(machine, spec.threads);

        // Loop-carried run state, declared before the mode branch so a
        // resume can overwrite all of it from the snapshot.
        let mut wall: u64 = 0;
        let mut epoch_wall: u64 = 0;
        let mut epoch_ops: u64 = 0;
        let mut total_ops: u64 = 0;
        let mut overhead_total: u64 = 0;
        let mut epochs: Vec<EpochRecord> = Vec::new();
        let mut epoch_index: u32 = 0;
        // Failed actions of the previous epoch, fed back to the policy on
        // fault-injected runs (never on fault-free runs, so a policy's
        // retry machinery stays dormant and zero-fault behaviour is
        // bit-identical to the pre-fault-layer engine).
        let mut last_failures: Vec<FailedAction> = Vec::new();

        // Attribution ledger state. All of it stays empty (and costs one
        // branch per charge site) when attribution is off, which keeps the
        // hot path allocation-free and the default run untouched.
        let attrib_on = config.attribution;
        let attrib_threads = if attrib_on { spec.threads } else { 0 };
        let mut prelude_bd = CycleBreakdown::default();
        let mut epoch_wall_bd = CycleBreakdown::default();
        let mut round_bds = vec![CycleBreakdown::default(); attrib_threads];
        let mut core_bds = vec![CycleBreakdown::default(); attrib_threads];
        let mut core_totals = vec![CycleBreakdown::default(); attrib_threads];
        let mut attrib_epochs: Vec<EpochAttribution> = Vec::new();

        // Flight-recorder state (DESIGN.md §16). TLB and walk-cache
        // counters are lifetime-cumulative, so per-epoch rates need the
        // previous boundary's totals — tracked only inside the recorder
        // guard; an unrecorded run pays one `Option` test per boundary
        // and nothing else. Every recorder read is `&self` (counters
        // already computed, page-stat aggregation, policy introspection),
        // so recorded runs stay bit-identical to unrecorded ones.
        let mut rec_prev_tlb = (0u64, 0u64, 0u64);
        let mut rec_prev_walk = (0u64, 0u64);
        if let Some(rec) = recorder.as_deref_mut() {
            rec.on_run_start(&RunInfo {
                workload: &spec.name,
                policy: policy.name(),
                machine: machine.name(),
                threads: spec.threads,
                nodes: machine.num_nodes(),
            });
        }

        if let RunMode::Resume {
            ckpt,
            restore_policy,
        } = &mode
        {
            assert!(
                ckpt.matches(machine, spec, config),
                "checkpoint was taken under a different machine/spec/config"
            );
            restore_checkpoint(
                ckpt,
                policy,
                *restore_policy,
                &mut gen,
                &mut st,
                &mut wall,
                &mut total_ops,
                &mut overhead_total,
                &mut epochs,
                &mut last_failures,
                attrib_on,
                &mut prelude_bd,
                &mut core_totals,
                &mut attrib_epochs,
            );
            epoch_index = ckpt.epoch();
            st.epoch = epoch_index;
        } else {
            st.emit(|| TraceEvent::RunStart {
                workload: spec.name.clone(),
                policy: policy.name().to_string(),
                machine: machine.name().to_string(),
                seed: config.seed,
            });
            {
                // Pins expire and pressure events apply at epoch boundaries;
                // epoch 0 covers a pressure event scheduled before the run.
                let SimState { faults, space, .. } = &mut st;
                faults.begin_epoch(0, space.owned_mut());
            }

            // Serial prelude: the loader thread's header touches run alone
            // before the parallel phase (a program's sequential setup).
            let mut prelude_cycles: u64 = 0;
            for &vaddr in gen.prelude().to_vec().iter() {
                let op = workloads::Op {
                    vaddr,
                    is_write: true,
                    coherent_store: false,
                    prefetched: false,
                };
                let bd = attrib_on.then_some(&mut prelude_bd);
                prelude_cycles += st.run_op(0, op, 1, bd) + think;
                if attrib_on {
                    prelude_bd.compute += think;
                }
            }
            wall += prelude_cycles;
        }

        // An epoch-0 checkpoint captures the state right here: prelude run,
        // epoch 0 begun, no rounds executed.
        if let RunMode::CheckpointAt { epoch, out } = &mut mode {
            if epoch_index == *epoch {
                **out = Some(capture_checkpoint(
                    machine,
                    spec,
                    config,
                    &*policy,
                    &gen,
                    &st,
                    epoch_index,
                    wall,
                    total_ops,
                    overhead_total,
                    &epochs,
                    &last_failures,
                    attrib_on,
                    &prelude_bd,
                    &core_totals,
                    &attrib_epochs,
                ));
                return None;
            }
        }

        // Reusable op buffer: one block of the access stream at a time.
        let mut block: Vec<workloads::Op> = Vec::new();

        // On a resume, epochs 0..epoch_index already ran before the
        // snapshot: restart the loop at the restored epoch's first round.
        // The `min` covers a checkpoint taken at the boundary after the
        // final (possibly short) epoch — the loop body is then empty and
        // only the finale runs, from restored state.
        let start_round = (u64::from(epoch_index) * u64::from(config.rounds_per_epoch))
            .min(u64::from(total_rounds)) as u32;

        // Threads interleave in small batches so first-touch races are
        // fair: within each batch cycle every thread advances equally.
        let batch = config.ops_per_batch.max(1).min(spec.ops_per_round);
        // The run advances one epoch chunk at a time: [round, chunk_end)
        // is one epoch's worth of rounds (the final chunk may be short).
        // `start_round` is always an epoch boundary, so chunks stay
        // aligned across checkpoint/resume splits.
        let mut round = start_round;
        while round < total_rounds {
            let chunk_end =
                ((round / config.rounds_per_epoch + 1) * config.rounds_per_epoch).min(total_rounds);
            // An epoch is shardable when no thread can fault (the
            // allocation phase — the only source of unmapped pages — is
            // over) and no data replicas exist (a store would collapse
            // them mid-round, a space mutation). Both conditions are
            // boundary-stable: alloc lists only shrink, and replicas are
            // only created by boundary policy actions. Under them, rounds
            // have no mid-round trace events, no faults, and no space
            // writes — the per-node-group sub-simulations interact only
            // through commutative counters, merged at `chunk_end`.
            let gate = node_groups.len() > 1
                && round >= gen.alloc_rounds()
                && !st.space.get().has_replicas();
            let _lease;
            let lanes_n = if !gate {
                1
            } else if shard_request > 0 {
                (shard_request as usize).min(node_groups.len())
            } else {
                _lease = crate::lanes::Lease::acquire(node_groups.len() - 1);
                1 + _lease.count()
            };
            let sharded = lanes_n > 1;
            if sharded {
                let lane_groups = chunk_lane_groups(&node_groups, lanes_n);
                let (cyc, bds) = run_epoch_sharded(
                    &mut st,
                    &mut gen,
                    spec,
                    &lane_groups,
                    round..chunk_end,
                    batch,
                    think,
                    attrib_on,
                );
                // Deterministic merge: replay the serial per-round wall
                // and attribution rules over the assembled thread cycles.
                for (ri, t_cycles) in cyc.iter().enumerate() {
                    let slowest = t_cycles.iter().copied().max().unwrap_or(0);
                    if attrib_on {
                        if let Some(wi) = t_cycles.iter().position(|&c| c == slowest) {
                            epoch_wall_bd.add(&bds[ri][wi]);
                        }
                        for (cb, rb) in core_bds.iter_mut().zip(bds[ri].iter()) {
                            cb.add(rb);
                        }
                    }
                    epoch_ops += spec.ops_per_round * spec.threads as u64;
                    total_ops += spec.ops_per_round * spec.threads as u64;
                    wall += slowest;
                    epoch_wall += slowest;
                }
            }
            let serial_rounds = if sharded {
                chunk_end..chunk_end
            } else {
                round..chunk_end
            };
            for r in serial_rounds {
                let faulting = (0..spec.threads).filter(|&t| gen.in_alloc_phase(t)).count();
                let mut t_cycles = vec![0u64; spec.threads];
                let mut issued: u64 = 0;
                let mut cycle_idx: usize = r as usize;
                while issued < spec.ops_per_round {
                    let n = batch.min(spec.ops_per_round - issued);
                    // Rotate the intra-batch thread order every cycle so no
                    // thread systematically wins first-touch races.
                    for k in 0..spec.threads {
                        let t = (k + cycle_idx) % spec.threads;
                        gen.next_block(t, n as usize, &mut block);
                        let bd = if attrib_on {
                            Some(&mut round_bds[t])
                        } else {
                            None
                        };
                        t_cycles[t] += st.run_block(t, &block, faulting, bd) + think * n;
                        if attrib_on {
                            round_bds[t].compute += think * n;
                        }
                    }
                    issued += n;
                    cycle_idx += 1;
                }
                let slowest = t_cycles.iter().copied().max().unwrap_or(0);
                if attrib_on {
                    // The round's wall time is the slowest thread's time: its
                    // breakdown *is* the round's wall breakdown. Ties are safe —
                    // any thread achieving the max has a breakdown summing to
                    // exactly `slowest` — but take the first for determinism.
                    if let Some(wi) = t_cycles.iter().position(|&c| c == slowest) {
                        epoch_wall_bd.add(&round_bds[wi]);
                    }
                    for (cb, rb) in core_bds.iter_mut().zip(round_bds.iter_mut()) {
                        cb.add(rb);
                        *rb = CycleBreakdown::default();
                    }
                }
                epoch_ops += spec.ops_per_round * spec.threads as u64;
                total_ops += spec.ops_per_round * spec.threads as u64;
                wall += slowest;
                epoch_wall += slowest;
            }
            round = chunk_end;

            // --- Epoch boundary: kernel daemons, counters, policy. ---
            let (collapsed, khuge_cost) = st
                .space
                .owned_mut()
                .promotion_scan(config.khugepaged_scan_limit);
            if !collapsed.is_empty() {
                // Collapsed ranges got new frames: stale entries must go.
                for t in &mut st.tlbs {
                    t.flush();
                }
                if st.trace.is_some() {
                    for &vbase in &collapsed {
                        st.emit(|| TraceEvent::Promotion {
                            epoch: epoch_index,
                            vbase: vbase.0,
                        });
                    }
                }
            }

            let controller_requests = st.mem.controller_epoch_requests();
            let (mut samples, ibs_overhead) = st.sampler.drain();
            // Injected sample loss/misattribution happens between the
            // hardware and the daemon: counters are unaffected, the
            // policy's view is. No-op when the plan is inactive.
            st.faults.filter_samples(&mut samples, machine.num_nodes());
            let mem_stats = *st.mem.epoch_stats();
            let counters = EpochCounters {
                epoch_cycles: epoch_wall,
                l2_accesses: mem_stats.l2_accesses,
                l2_misses: mem_stats.l2_misses,
                l2_walk_misses: mem_stats.l2_walk_misses,
                dram_local: mem_stats.dram_local,
                dram_remote: mem_stats.dram_remote,
                controller_requests,
                fault_time: st
                    .fault_epoch
                    .iter()
                    .map(|&c| CoreFaultTime { fault_cycles: c })
                    .collect(),
                mem_ops: epoch_ops,
            };

            let boundary_thp = st.space.get().thp();
            let mut ctx = EpochCtx::new(machine, &counters, &samples, boundary_thp, epoch_index);
            let failures_fed = st.faults.is_active();
            if failures_fed {
                ctx.set_failures(&last_failures);
            }
            if st.trace.is_some() || observer.is_some() {
                ctx.enable_decision_log();
            }
            policy.on_epoch(&mut ctx);
            let actions = ctx.take_actions();
            let decisions = ctx.take_decisions();
            let retries = ctx.retries_recorded();
            if let Some(obs) = observer.as_deref_mut() {
                obs.on_boundary(&EpochBoundary {
                    epoch: epoch_index,
                    counters: &counters,
                    samples: &samples,
                    thp: boundary_thp,
                    failures: failures_fed.then_some(last_failures.as_slice()),
                    actions: &actions,
                    decisions: &decisions,
                    retries,
                    fingerprint: crate::trace::epoch_output_fingerprint(
                        epoch_index,
                        &actions,
                        &decisions,
                        retries,
                    ),
                });
            }
            for decision in decisions {
                st.emit(|| TraceEvent::Decision {
                    epoch: epoch_index,
                    decision,
                });
            }
            st.robust.retries += retries;
            let mut failures: Vec<FailedAction> = Vec::new();
            let (migrations, splits, action_costs) = st.apply_actions(actions, &mut failures);
            let action_cost = action_costs.total();
            if st.trace.is_some() {
                for f in &failures {
                    st.emit(|| TraceEvent::ActionFailed {
                        epoch: epoch_index,
                        action: f.action,
                        error: f.error,
                    });
                }
            }

            // Kernel-side work (daemon scans, sampling NMIs, migrations)
            // executes on the same cores as the application; spread across
            // the machine it lengthens the epoch by its per-core share.
            let overhead = khuge_cost + ibs_overhead + action_cost;
            let overhead_share = overhead / st.threads as u64;
            wall += overhead_share;
            epoch_wall += overhead_share;
            overhead_total += overhead;
            if attrib_on {
                // The flooring of `overhead / threads` is distributed over
                // the kind buckets by prefix-sum differencing, so the five
                // shares sum to `overhead_share` exactly — no cycle is lost
                // to five independent floors.
                let [kh, ib, mi, sp, re] = split_div(
                    [
                        khuge_cost,
                        ibs_overhead,
                        action_costs.migrate,
                        action_costs.split,
                        action_costs.replicate,
                    ],
                    st.threads as u64,
                );
                epoch_wall_bd.khugepaged += kh;
                epoch_wall_bd.ibs_sampling += ib;
                epoch_wall_bd.policy_migration += mi;
                epoch_wall_bd.policy_split += sp;
                epoch_wall_bd.policy_replication += re;
            }

            if st.trace.is_some() {
                // Snapshot before end_epoch resets the per-epoch
                // controller counters: the delays shown are the ones that
                // were actually charged during this epoch.
                let snaps = st.mem.controller_snapshots();
                let snap = EpochSnap {
                    epoch_cycles: epoch_wall,
                    imbalance: metrics::imbalance(&counters.controller_requests),
                    lar: mem_stats.lar(),
                    walk_miss_fraction: counters.walk_miss_fraction(),
                    l2_misses: counters.l2_misses,
                    l2_walk_misses: counters.l2_walk_misses,
                    max_fault_cycles: st.fault_epoch.iter().copied().max().unwrap_or(0),
                    controller_requests: snaps.iter().map(|s| s.requests).collect(),
                    controller_delays: snaps.iter().map(|s| s.queue_delay).collect(),
                    migrations,
                    splits,
                    collapses: collapsed.len() as u64,
                    failed_actions: failures.len() as u64,
                    thp_alloc: st.space.get().thp().alloc_2m,
                    thp_promote: st.space.get().thp().promote_2m,
                };
                st.emit(|| TraceEvent::EpochEnd {
                    epoch: epoch_index,
                    snap,
                });
            }
            st.mem.end_epoch(epoch_wall);
            // Controller and link delays just changed: the uncached memo
            // (a function of those delays) is stale.
            st.fast_uncached.fill(None);
            epochs.push(EpochRecord {
                counters,
                migrations,
                splits,
                collapses: collapsed.len() as u64,
                overhead_cycles: overhead,
                thp_alloc_enabled: st.space.get().thp().alloc_2m,
                thp_promote_enabled: st.space.get().thp().promote_2m,
                failed_actions: failures.len() as u64,
            });
            last_failures = failures;
            if attrib_on {
                attrib_epochs.push(EpochAttribution {
                    wall: epoch_wall_bd,
                    cores: core_bds.clone(),
                });
                for (tot, cb) in core_totals.iter_mut().zip(core_bds.iter_mut()) {
                    tot.add(cb);
                    *cb = CycleBreakdown::default();
                }
                epoch_wall_bd = CycleBreakdown::default();
            }
            if let Some(rec) = recorder.as_deref_mut() {
                // The flight-recorder sample for the epoch this boundary
                // closed. `epoch_wall` still holds the epoch's full wall
                // cycles (boundary overhead included) and the per-epoch
                // accumulators are not yet reset; the counters moved into
                // `epochs` are read back off its tail. Everything here is
                // a pure observation — see the bit-identity contract above.
                let (l1h, l2h, tmiss) = st.tlbs.iter().fold((0u64, 0u64, 0u64), |acc, t| {
                    let s = t.stats();
                    (acc.0 + s.l1_hits, acc.1 + s.l2_hits, acc.2 + s.misses)
                });
                let (wh, wm) = st.walk_caches.iter().fold((0u64, 0u64), |acc, w| {
                    (acc.0 + w.hits(), acc.1 + w.misses())
                });
                let pages = st.page_stats.as_ref().map(|ps| {
                    let space = st.space.get();
                    let rows = ps.aggregate(|base4k| {
                        space
                            .translate(VirtAddr(base4k))
                            .map(|m| m.vbase.0)
                            .unwrap_or(base4k)
                    });
                    PageSnapshot {
                        pamup: metrics::pamup(&rows),
                        nhp: metrics::nhp(&rows),
                        psp: metrics::psp(&rows),
                    }
                });
                let rec_counters = &epochs.last().expect("boundary just pushed").counters;
                rec.on_epoch(&MetricsSample {
                    epoch: epoch_index,
                    epoch_cycles: epoch_wall,
                    mem_ops: rec_counters.mem_ops,
                    imbalance: metrics::imbalance(&rec_counters.controller_requests),
                    lar: mem_stats.lar(),
                    walk_miss_fraction: rec_counters.walk_miss_fraction(),
                    controller_requests: &rec_counters.controller_requests,
                    tlb_l1_hits: l1h - rec_prev_tlb.0,
                    tlb_l2_hits: l2h - rec_prev_tlb.1,
                    tlb_misses: tmiss - rec_prev_tlb.2,
                    walk_cache_hits: wh - rec_prev_walk.0,
                    walk_cache_misses: wm - rec_prev_walk.1,
                    migrations,
                    splits,
                    collapses: collapsed.len() as u64,
                    failed_actions: last_failures.len() as u64,
                    pages,
                    policy: policy.introspect(epoch_index),
                    attrib: attrib_epochs.last().map(|e| &e.wall),
                    lanes_free: crate::lanes::available(),
                });
                rec_prev_tlb = (l1h, l2h, tmiss);
                rec_prev_walk = (wh, wm);
            }
            st.fault_epoch.iter_mut().for_each(|c| *c = 0);
            epoch_wall = 0;
            epoch_ops = 0;
            epoch_index += 1;
            st.epoch = epoch_index;
            {
                let SimState { faults, space, .. } = &mut st;
                faults.begin_epoch(epoch_index, space.owned_mut());
            }
            if config.validate_each_epoch {
                st.space.get().validate().unwrap_or_else(|e| {
                    panic!(
                        "vmem invariant violated after epoch {}: {e}",
                        epoch_index - 1
                    )
                });
            }

            // The snapshot point: the boundary that closed `epoch_index - 1`
            // and began `epoch_index`. Per-epoch accumulators are freshly
            // reset here, which keeps the payload minimal. An observer may
            // capture here too (every boundary, not just one target epoch),
            // which is what lets the fork tree snapshot a whole probe run
            // in a single pass instead of O(epochs) re-runs.
            if let Some(obs) = observer.as_deref_mut() {
                if obs.want_checkpoint(epoch_index) {
                    obs.on_checkpoint(capture_checkpoint(
                        machine,
                        spec,
                        config,
                        &*policy,
                        &gen,
                        &st,
                        epoch_index,
                        wall,
                        total_ops,
                        overhead_total,
                        &epochs,
                        &last_failures,
                        attrib_on,
                        &prelude_bd,
                        &core_totals,
                        &attrib_epochs,
                    ));
                }
            }
            if let RunMode::CheckpointAt { epoch, out } = &mut mode {
                if epoch_index == *epoch {
                    **out = Some(capture_checkpoint(
                        machine,
                        spec,
                        config,
                        &*policy,
                        &gen,
                        &st,
                        epoch_index,
                        wall,
                        total_ops,
                        overhead_total,
                        &epochs,
                        &last_failures,
                        attrib_on,
                        &prelude_bd,
                        &core_totals,
                        &attrib_epochs,
                    ));
                    return None;
                }
            }
        }

        // --- Whole-run aggregates. ---
        let life = st.mem.lifetime_stats();
        let controller_totals = st.mem.controller_total_requests();
        let max_fault = st.fault_life.iter().copied().max().unwrap_or(0);
        let (l1h, l2h, miss) = st.tlbs.iter().fold((0u64, 0u64, 0u64), |acc, t| {
            let s = t.stats();
            (acc.0 + s.l1_hits, acc.1 + s.l2_hits, acc.2 + s.misses)
        });
        let tlb_total = l1h + l2h + miss;

        let lifetime = LifetimeStats {
            lar: life.lar(),
            imbalance: metrics::imbalance(&controller_totals),
            walk_miss_fraction: if life.l2_misses == 0 {
                0.0
            } else {
                life.l2_walk_misses as f64 / life.l2_misses as f64
            },
            tlb_miss_ratio: if tlb_total == 0 {
                0.0
            } else {
                miss as f64 / tlb_total as f64
            },
            max_fault_cycles: max_fault,
            max_fault_fraction: if wall == 0 {
                0.0
            } else {
                max_fault as f64 / wall as f64
            },
            total_fault_cycles: st.fault_life.iter().sum(),
            vmem: st.space.get().stats().clone(),
            overhead_cycles: overhead_total,
            ibs_samples: st.sampler.total_taken(),
            total_ops,
        };

        let pages = match &st.page_stats {
            Some(ps) => {
                let space = st.space.get();
                let rows_mapped = ps.aggregate(|base4k| {
                    space
                        .translate(VirtAddr(base4k))
                        .map(|m| m.vbase.0)
                        .unwrap_or(base4k)
                });
                let rows_4k = ps.aggregate(|b| b);
                PageMetrics {
                    pamup: metrics::pamup(&rows_mapped),
                    nhp: metrics::nhp(&rows_mapped),
                    psp: metrics::psp(&rows_mapped),
                    pamup_4k: metrics::pamup(&rows_4k),
                    nhp_4k: metrics::nhp(&rows_4k),
                    psp_4k: metrics::psp(&rows_4k),
                }
            }
            None => PageMetrics::default(),
        };

        // Merge the plan's own counters into the run's robustness block.
        let fc = st.faults.counters;
        st.robust.fallback_allocs = fc.fallback_allocs;
        st.robust.busy_rejections = fc.busy_rejections;
        st.robust.dropped_samples = fc.dropped_samples;
        st.robust.misattributed_samples = fc.misattributed_samples;
        st.robust.oom_reclaims = fc.oom_reclaims;

        if let Some(t) = st.trace.as_mut() {
            t.finish();
        }
        if let Some(rec) = recorder {
            rec.finish();
        }

        let attribution = if attrib_on {
            let mut total = prelude_bd;
            for e in &attrib_epochs {
                total.add(&e.wall);
            }
            let ledger = AttributionLedger {
                prelude: prelude_bd,
                epochs: attrib_epochs,
                total,
                core_totals,
            };
            debug_assert!(
                ledger.conserves(wall),
                "attribution conservation violated: buckets sum to {}, wall is {wall}",
                ledger.total.total()
            );
            Some(ledger)
        } else {
            None
        };

        Some(SimResult {
            workload: spec.name.clone(),
            policy: policy.name().to_string(),
            machine: machine.name().to_string(),
            runtime_cycles: wall,
            runtime_ms: machine.cycles_to_ms(wall),
            epochs,
            lifetime,
            pages,
            robustness: st.robust,
            attribution,
        })
    }
}

/// Reads `$name` as a `u32` override. Unset → `None` (auto). Set but
/// unparseable → a loud stderr warning and `None`: a typo'd override
/// silently pinning behaviour to the default is far worse than noise.
/// Shared by `CARREFOUR_SHARDS` here and the bench runner's
/// `CARREFOUR_JOBS` / `CARREFOUR_FORK_CACHE_MB`.
pub fn env_override_u32(name: &str) -> Option<u32> {
    parse_env_override(name, std::env::var(name).ok().as_deref())
}

/// The pure half of [`env_override_u32`], split out so tests don't race on
/// process-global environment state.
fn parse_env_override(name: &str, raw: Option<&str>) -> Option<u32> {
    let raw = raw?;
    match raw.trim().parse::<u32>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "warning: ignoring {name}={raw:?}: not a non-negative integer, falling back to auto"
            );
            None
        }
    }
}

#[cfg(test)]
mod env_override_tests {
    use super::parse_env_override;

    #[test]
    fn unset_is_auto() {
        assert_eq!(parse_env_override("CARREFOUR_SHARDS", None), None);
    }

    #[test]
    fn valid_values_parse_with_whitespace_tolerance() {
        assert_eq!(parse_env_override("CARREFOUR_SHARDS", Some("4")), Some(4));
        assert_eq!(
            parse_env_override("CARREFOUR_SHARDS", Some(" 12 ")),
            Some(12)
        );
        assert_eq!(parse_env_override("CARREFOUR_SHARDS", Some("0")), Some(0));
    }

    #[test]
    fn garbage_warns_and_falls_back_to_auto() {
        for bad in ["four", "-1", "3.5", "", "0x10", "9999999999999999999"] {
            assert_eq!(parse_env_override("CARREFOUR_JOBS", Some(bad)), None);
        }
    }
}

/// Serializes everything a mid-stream resume needs, in `ckpt-v1` payload
/// order. [`restore_checkpoint`] mirrors this exactly; any change to either
/// must extend the schema descriptor in [`crate::checkpoint`].
#[allow(clippy::too_many_arguments)]
fn capture_checkpoint(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    config: &SimConfig,
    policy: &dyn NumaPolicy,
    gen: &WorkloadGen,
    st: &SimState<'_, '_, '_>,
    epoch_index: u32,
    wall: u64,
    total_ops: u64,
    overhead_total: u64,
    epochs: &[EpochRecord],
    last_failures: &[FailedAction],
    attrib_on: bool,
    prelude_bd: &CycleBreakdown,
    core_totals: &[CycleBreakdown],
    attrib_epochs: &[EpochAttribution],
) -> Checkpoint {
    let mut e = codec::Enc::new();
    gen.save_into(&mut e);
    st.space.get().save_into(&mut e);
    e.seq(st.walk_caches.iter(), |e, w| w.save_into(e));
    e.seq(st.tlbs.iter(), |e, t| t.save_into(e));
    st.mem.save_into(&mut e);
    st.sampler.save_into(&mut e);
    e.bool(st.page_stats.is_some());
    if let Some(ps) = &st.page_stats {
        ps.save_into(&mut e);
    }
    st.faults.save_into(&mut e);
    e.seq(st.fault_epoch.iter(), |e, &c| e.u64(c));
    e.seq(st.fault_life.iter(), |e, &c| e.u64(c));
    checkpoint::enc_robust(&mut e, &st.robust);
    e.u64(wall);
    e.u64(total_ops);
    e.u64(overhead_total);
    e.seq(epochs.iter(), checkpoint::enc_epoch_record);
    e.seq(last_failures.iter(), checkpoint::enc_failed_action);
    e.bool(attrib_on);
    if attrib_on {
        checkpoint::enc_breakdown(&mut e, prelude_bd);
        e.seq(core_totals.iter(), checkpoint::enc_breakdown);
        e.seq(attrib_epochs.iter(), checkpoint::enc_epoch_attribution);
    }
    e.bytes(&policy.save_state());
    Checkpoint::new(
        epoch_index,
        checkpoint::config_fingerprint(machine, spec, config),
        e.into_bytes(),
    )
}

/// Overwrites freshly-constructed run state from a `ckpt-v1` payload, in
/// the exact order [`capture_checkpoint`] wrote it. Constructor-fixed
/// dimensions (thread counts, TLB count, attribution switch) are asserted,
/// not restored — a fingerprint-matched checkpoint always agrees on them.
#[allow(clippy::too_many_arguments)]
fn restore_checkpoint(
    ckpt: &Checkpoint,
    policy: &mut dyn NumaPolicy,
    restore_policy: bool,
    gen: &mut WorkloadGen,
    st: &mut SimState<'_, '_, '_>,
    wall: &mut u64,
    total_ops: &mut u64,
    overhead_total: &mut u64,
    epochs: &mut Vec<EpochRecord>,
    last_failures: &mut Vec<FailedAction>,
    attrib_on: bool,
    prelude_bd: &mut CycleBreakdown,
    core_totals: &mut Vec<CycleBreakdown>,
    attrib_epochs: &mut Vec<EpochAttribution>,
) {
    let mut d = codec::Dec::new(ckpt.payload());
    gen.load_from(&mut d);
    st.space.owned_mut().load_from(&mut d);
    let n_wc = d.usize();
    assert_eq!(n_wc, st.walk_caches.len(), "checkpoint walk-cache count");
    for w in &mut st.walk_caches {
        w.load_from(&mut d);
    }
    let n_tlbs = d.usize();
    assert_eq!(n_tlbs, st.tlbs.len(), "checkpoint TLB count");
    for t in &mut st.tlbs {
        t.load_from(&mut d);
    }
    st.mem.load_from(&mut d);
    st.sampler.load_from(&mut d);
    let had_stats = d.bool();
    assert_eq!(
        had_stats,
        st.page_stats.is_some(),
        "checkpoint page-stat tracking does not match the config"
    );
    if let Some(ps) = &mut st.page_stats {
        ps.load_from(&mut d);
    }
    st.faults.load_from(&mut d);
    let fe = d.seq(|d| d.u64());
    assert_eq!(
        fe.len(),
        st.fault_epoch.len(),
        "checkpoint fault-epoch length"
    );
    st.fault_epoch = fe;
    let fl = d.seq(|d| d.u64());
    assert_eq!(
        fl.len(),
        st.fault_life.len(),
        "checkpoint fault-life length"
    );
    st.fault_life = fl;
    st.robust = checkpoint::dec_robust(&mut d);
    *wall = d.u64();
    *total_ops = d.u64();
    *overhead_total = d.u64();
    *epochs = d.seq(checkpoint::dec_epoch_record);
    *last_failures = d.seq(checkpoint::dec_failed_action);
    let saved_attrib = d.bool();
    assert_eq!(
        saved_attrib, attrib_on,
        "checkpoint attribution switch does not match the config"
    );
    if attrib_on {
        *prelude_bd = checkpoint::dec_breakdown(&mut d);
        let ct = d.seq(checkpoint::dec_breakdown);
        assert_eq!(ct.len(), core_totals.len(), "checkpoint core-total count");
        *core_totals = ct;
        *attrib_epochs = d.seq(checkpoint::dec_epoch_attribution);
    }
    let policy_bytes = d.bytes().to_vec();
    d.finish();
    // A fork (`restore_policy == false`) keeps the caller-prepared policy
    // state: the snapshot's policy bytes belong to the *probe* policy, not
    // the sibling about to run the tail.
    if restore_policy {
        policy.restore_state(&policy_bytes);
    }
}

/// One shard lane's slice of the machine: the threads it simulates and
/// the cores/nodes whose cache and IBS-store state it exclusively owns
/// during a sharded epoch (DESIGN.md §14).
#[derive(Clone)]
struct LaneGroup {
    /// Threads this lane runs. Thread `t` runs on core `t`, so these
    /// double as the lane's core indices.
    threads: Vec<usize>,
    /// Core indices owned by this lane (== `threads`; kept separate so
    /// the absorb call reads naturally).
    cores: Vec<usize>,
    /// NUMA node indices owned by this lane.
    nodes: Vec<usize>,
}

/// Groups the workload's threads by home NUMA node, in first-seen node
/// order. One group per populated node is the finest shard grain at which
/// every L3 and per-node IBS store stays owned by exactly one lane.
fn lane_node_groups(machine: &MachineSpec, threads: usize) -> Vec<LaneGroup> {
    let mut groups: Vec<LaneGroup> = Vec::new();
    for t in 0..threads {
        let node = machine.node_of_core(CoreId::from(t)).index();
        match groups.iter_mut().find(|g| g.nodes[0] == node) {
            Some(g) => {
                g.threads.push(t);
                g.cores.push(t);
            }
            None => groups.push(LaneGroup {
                threads: vec![t],
                cores: vec![t],
                nodes: vec![node],
            }),
        }
    }
    groups
}

/// Merges per-node groups into at most `lanes` lane groups by contiguous
/// partition. Contiguity makes the lane → (threads, cores, nodes) mapping
/// a pure function of the group list and the lane count, and the absorb
/// loop runs in group order regardless of how groups were merged — which
/// is why every lane count produces bit-identical results.
fn chunk_lane_groups(node_groups: &[LaneGroup], lanes: usize) -> Vec<LaneGroup> {
    let n = node_groups.len();
    if n == 0 {
        return Vec::new();
    }
    let lanes = lanes.clamp(1, n);
    let mut out: Vec<LaneGroup> = Vec::with_capacity(lanes);
    for (i, g) in node_groups.iter().cloned().enumerate() {
        if out.len() == i * lanes / n {
            out.push(g);
        } else {
            let last = out.last_mut().expect("contiguous partition starts at 0");
            last.threads.extend(g.threads);
            last.cores.extend(g.cores);
            last.nodes.extend(g.nodes);
        }
    }
    out
}

/// The owned, `Send` pieces of simulation state a shard lane carries to
/// its worker thread and back. Everything else a lane touches is either a
/// `Sync` shared reference (machine, address space, workload generator) or
/// a scalar copied via [`LaneScalars`]. Notably absent: the trace sink
/// (shardable epochs emit no mid-round events) and the fault plan
/// (shardable epochs are proven fault-free by the gate).
struct LaneParts {
    mem: MemorySystem,
    walk_caches: Vec<WalkCache>,
    tlbs: Vec<Tlb>,
    sampler: IbsSampler,
    page_stats: Option<PageAccessStats>,
    fast_uncached: Vec<Option<AccessOutcome>>,
    /// The lane's own threads' generator streams, detached so the lane can
    /// draw blocks through a shared `&WorkloadGen`.
    streams: Vec<(usize, workloads::ThreadStream)>,
}

/// What one lane hands back: its mutated parts plus per-round cycle
/// totals and attribution breakdowns for its own threads, indexed
/// `[round - rounds.start][position in group.threads]`.
type LaneOut = (LaneParts, Vec<Vec<u64>>, Vec<Vec<CycleBreakdown>>);

/// Scalar knobs a lane's `SimState` copies from the main state.
#[derive(Clone, Copy)]
struct LaneScalars {
    mlp: u64,
    l2_tlb_hit_cycles: u32,
    fault_contention: u64,
    threads: usize,
    epoch: u32,
    fast_on: bool,
    fast_nodes: usize,
    l1_line_shift: u32,
    l1_latency: u32,
}

/// Runs one lane's sub-simulation of `rounds`: the lane's own threads
/// execute their blocks for real; every other thread's block advances the
/// IBS countdown by its op count ([`IbsSampler::advance_foreign`]), so
/// this lane's samples fire at the exact global op indices of the serial
/// schedule.
///
/// Returns the mutated parts plus per-round cycle totals and attribution
/// breakdowns for the lane's own threads, indexed
/// `[round - rounds.start][position in group.threads]`.
#[allow(clippy::too_many_arguments)]
fn run_lane(
    parts: LaneParts,
    machine: &MachineSpec,
    space: &AddressSpace,
    gen: &WorkloadGen,
    spec: &WorkloadSpec,
    group: &LaneGroup,
    rounds: std::ops::Range<u32>,
    batch: u64,
    think: u64,
    attrib_on: bool,
    scalars: LaneScalars,
) -> LaneOut {
    let LaneParts {
        mem,
        walk_caches,
        tlbs,
        sampler,
        page_stats,
        fast_uncached,
        mut streams,
    } = parts;
    let mut lane = SimState {
        machine,
        mlp: scalars.mlp,
        mem,
        space: SpaceRef::Shared(space),
        walk_caches,
        tlbs,
        sampler,
        page_stats,
        fault_epoch: vec![0; scalars.threads],
        fault_life: vec![0; scalars.threads],
        l2_tlb_hit_cycles: scalars.l2_tlb_hit_cycles,
        fault_contention: scalars.fault_contention,
        threads: scalars.threads,
        faults: FaultPlan::new(&crate::faults::FaultConfig::none()),
        robust: RobustnessStats::default(),
        trace: None,
        epoch: scalars.epoch,
        fast_on: scalars.fast_on,
        fast_uncached,
        fast_pending: vec![0; scalars.fast_nodes],
        fast_nodes: scalars.fast_nodes,
        l1_line_shift: scalars.l1_line_shift,
        l1_latency: scalars.l1_latency,
    };
    // Thread index → position among this lane's own threads
    // (`usize::MAX` marks a foreign thread).
    let mut own = vec![usize::MAX; spec.threads];
    for (j, &t) in group.threads.iter().enumerate() {
        own[t] = j;
    }
    let n_rounds = (rounds.end - rounds.start) as usize;
    let mut cycles = vec![vec![0u64; group.threads.len()]; n_rounds];
    let mut bds = vec![vec![CycleBreakdown::default(); group.threads.len()]; n_rounds];
    let mut block: Vec<workloads::Op> = Vec::new();
    for r in rounds.clone() {
        let ri = (r - rounds.start) as usize;
        let mut issued: u64 = 0;
        let mut cycle_idx: usize = r as usize;
        while issued < spec.ops_per_round {
            let n = batch.min(spec.ops_per_round - issued);
            for k in 0..spec.threads {
                let t = (k + cycle_idx) % spec.threads;
                let j = own[t];
                if j == usize::MAX {
                    // A foreign thread's block: its cycles and cache
                    // effects happen in its own lane, but the shared IBS
                    // countdown must tick past its ops so this lane's
                    // samples keep their serial positions.
                    lane.sampler.advance_foreign(n);
                    continue;
                }
                gen.stream_block(t, &mut streams[j].1, n as usize, &mut block);
                let bd = if attrib_on {
                    Some(&mut bds[ri][j])
                } else {
                    None
                };
                cycles[ri][j] += lane.run_block(t, &block, 0, bd) + think * n;
                if attrib_on {
                    bds[ri][j].compute += think * n;
                }
            }
            issued += n;
            cycle_idx += 1;
        }
    }
    let SimState {
        mem,
        walk_caches,
        tlbs,
        sampler,
        page_stats,
        fast_uncached,
        ..
    } = lane;
    (
        LaneParts {
            mem,
            walk_caches,
            tlbs,
            sampler,
            page_stats,
            fast_uncached,
            streams,
        },
        cycles,
        bds,
    )
}

/// Runs one epoch chunk sharded across `groups` — the first group on the
/// caller's thread, each further group on a scoped OS thread — then
/// absorbs every lane back into `st` in fixed group order.
///
/// Returns the full `[round][thread]` cycle totals and attribution
/// breakdowns, reassembled exactly as the serial loop would have produced
/// them; the caller replays the serial wall/attribution merge over them.
#[allow(clippy::too_many_arguments)]
fn run_epoch_sharded(
    st: &mut SimState<'_, '_, '_>,
    gen: &mut WorkloadGen,
    spec: &WorkloadSpec,
    groups: &[LaneGroup],
    rounds: std::ops::Range<u32>,
    batch: u64,
    think: u64,
    attrib_on: bool,
) -> (Vec<Vec<u64>>, Vec<Vec<CycleBreakdown>>) {
    let scalars = LaneScalars {
        mlp: st.mlp,
        l2_tlb_hit_cycles: st.l2_tlb_hit_cycles,
        fault_contention: st.fault_contention,
        threads: st.threads,
        epoch: st.epoch,
        fast_on: st.fast_on,
        fast_nodes: st.fast_nodes,
        l1_line_shift: st.l1_line_shift,
        l1_latency: st.l1_latency,
    };
    // Fork one set of owned parts per lane — cheap next to an epoch's
    // work: caches clone, counters zero, sample stores start empty.
    let mut forks: Vec<LaneParts> = groups
        .iter()
        .map(|g| LaneParts {
            mem: st.mem.fork_lane(),
            walk_caches: st.walk_caches.clone(),
            tlbs: st.tlbs.clone(),
            sampler: st.sampler.fork_lane(),
            page_stats: st.page_stats.as_ref().map(|_| PageAccessStats::new()),
            fast_uncached: st.fast_uncached.clone(),
            streams: g
                .threads
                .iter()
                .map(|&t| (t, gen.detach_thread(t)))
                .collect(),
        })
        .collect();
    let machine = st.machine;
    let space = st.space.get();
    let gen_ref: &WorkloadGen = gen;
    let mut outs: Vec<Option<LaneOut>> = (0..groups.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut it = forks.drain(..);
        let first = it.next().expect("at least one lane group");
        for (g, parts) in groups[1..].iter().zip(it) {
            let r = rounds.clone();
            handles.push(s.spawn(move || {
                run_lane(
                    parts, machine, space, gen_ref, spec, g, r, batch, think, attrib_on, scalars,
                )
            }));
        }
        outs[0] = Some(run_lane(
            first,
            machine,
            space,
            gen_ref,
            spec,
            &groups[0],
            rounds.clone(),
            batch,
            think,
            attrib_on,
            scalars,
        ));
        for (i, h) in handles.into_iter().enumerate() {
            outs[i + 1] = Some(h.join().expect("shard lane panicked"));
        }
    });
    // Deterministic absorb: always in group order, whatever order the
    // lanes actually finished in.
    let n_rounds = (rounds.end - rounds.start) as usize;
    let mut cyc = vec![vec![0u64; spec.threads]; n_rounds];
    let mut bds = vec![vec![CycleBreakdown::default(); spec.threads]; n_rounds];
    for (g, out) in groups.iter().zip(outs) {
        let (mut parts, lane_cyc, lane_bds) = out.expect("every lane produced a result");
        st.mem.absorb_lane(&mut parts.mem, &g.cores, &g.nodes);
        st.sampler.absorb_lane(&mut parts.sampler);
        if let (Some(ps), Some(lp)) = (st.page_stats.as_mut(), parts.page_stats.as_ref()) {
            ps.absorb(lp);
        }
        for &t in &g.threads {
            std::mem::swap(&mut st.tlbs[t], &mut parts.tlbs[t]);
            std::mem::swap(&mut st.walk_caches[t], &mut parts.walk_caches[t]);
        }
        for (t, stream) in parts.streams {
            gen.attach_thread(t, stream);
        }
        for (ri, (lc, lb)) in lane_cyc.into_iter().zip(lane_bds).enumerate() {
            for (j, &t) in g.threads.iter().enumerate() {
                cyc[ri][t] = lc[j];
            }
            for (j, b) in lb.into_iter().enumerate() {
                bds[ri][g.threads[j]] = b;
            }
        }
    }
    (cyc, bds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullPolicy;
    use crate::trace::DigestSink;
    use vmem::ThpControls;
    use workloads::{AccessPattern, RegionSpec};

    fn tiny_spec(pattern: AccessPattern, threads: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny".into(),
            threads,
            regions: vec![RegionSpec {
                base: 64 << 30,
                bytes: 4 << 20,
                share: 1.0,
                pattern,
                alloc_skew: 0.0,
                loader_headers: 0.0,
                rw_shared: false,
                read_only: false,
            }],
            ops_per_round: 400,
            compute_rounds: 8,
            think_cycles_per_op: 10,
            write_fraction: 0.3,
            phases: Vec::new(),
            mlp: 1,
        }
    }

    fn run_tiny(thp: ThpControls) -> SimResult {
        let machine = MachineSpec::test_machine();
        let mut config = SimConfig::fast_test();
        config.vmem.thp = thp;
        let spec = tiny_spec(AccessPattern::PrivateSlices, 4);
        Simulation::run(&machine, &spec, &config, &mut NullPolicy)
    }

    #[test]
    fn run_completes_and_accounts_ops() {
        let r = run_tiny(ThpControls::small_only());
        // 4 MiB = 1024 alloc ops spread over 4 threads = 256 each
        // → 1 alloc round; plus 8 compute rounds, 400 ops, 4 threads.
        assert_eq!(r.lifetime.total_ops, 9 * 400 * 4);
        assert!(r.runtime_cycles > 0);
        assert!(!r.epochs.is_empty());
        assert_eq!(r.lifetime.vmem.faults_4k, 1024);
    }

    #[test]
    fn thp_reduces_faults_512x() {
        let small = run_tiny(ThpControls::small_only());
        let huge = run_tiny(ThpControls::thp());
        assert_eq!(small.lifetime.vmem.faults_4k, 1024);
        assert_eq!(huge.lifetime.vmem.faults_2m, 2);
        assert_eq!(huge.lifetime.vmem.faults_4k, 0);
    }

    #[test]
    fn thp_reduces_tlb_misses() {
        let small = run_tiny(ThpControls::small_only());
        let huge = run_tiny(ThpControls::thp());
        assert!(
            huge.lifetime.tlb_miss_ratio < small.lifetime.tlb_miss_ratio,
            "huge {} vs small {}",
            huge.lifetime.tlb_miss_ratio,
            small.lifetime.tlb_miss_ratio
        );
    }

    #[test]
    fn private_slices_have_high_lar_with_small_pages() {
        let r = run_tiny(ThpControls::small_only());
        assert!(r.lifetime.lar > 0.9, "lar {}", r.lifetime.lar);
    }

    #[test]
    fn interleaved_chunks_lose_locality_under_thp() {
        let machine = MachineSpec::test_machine();
        let spec = tiny_spec(
            AccessPattern::InterleavedChunks {
                chunk_bytes: 8192,
                dwell_ops: 1,
            },
            4,
        );
        let mut config = SimConfig::fast_test();
        config.vmem.thp = ThpControls::small_only();
        let small = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        config.vmem.thp = ThpControls::thp();
        let huge = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        assert!(
            huge.lifetime.lar < small.lifetime.lar - 0.1,
            "huge {} small {}",
            huge.lifetime.lar,
            small.lifetime.lar
        );
        // And the page-level sharing metric jumps (the paper's PSP).
        assert!(
            huge.pages.psp > small.pages.psp + 20.0,
            "huge {} small {}",
            huge.pages.psp,
            small.pages.psp
        );
    }

    #[test]
    fn determinism() {
        let a = run_tiny(ThpControls::thp());
        let b = run_tiny(ThpControls::thp());
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.lifetime.ibs_samples, b.lifetime.ibs_samples);
    }

    #[test]
    fn fast_path_matches_per_op_path() {
        // The batched fast path (default) and the per-op path selected by
        // CARREFOUR_NO_FASTPATH must agree bit-for-bit. Exercise coherent
        // stores (uncached memo), a prefetched stream, and huge pages.
        // Setting the env var mid-process is safe precisely because the
        // two paths are identical: any concurrent test sees equal results.
        let machine = MachineSpec::test_machine();
        for pattern in [
            AccessPattern::SharedUniform,
            AccessPattern::Stream { stride: 64 },
            AccessPattern::PrivateSlices,
        ] {
            let mut spec = tiny_spec(pattern, 4);
            spec.regions[0].rw_shared = true;
            spec.write_fraction = 0.5;
            let mut config = SimConfig::fast_test();
            config.vmem.thp = ThpControls::thp();
            let fast = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
            std::env::set_var("CARREFOUR_NO_FASTPATH", "1");
            let slow = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
            std::env::remove_var("CARREFOUR_NO_FASTPATH");
            assert_eq!(fast.runtime_cycles, slow.runtime_cycles);
            assert_eq!(fast.lifetime.ibs_samples, slow.lifetime.ibs_samples);
            assert_eq!(fast.lifetime.total_ops, slow.lifetime.total_ops);
            assert_eq!(fast.lifetime.lar, slow.lifetime.lar);
            assert_eq!(fast.lifetime.imbalance, slow.lifetime.imbalance);
            assert_eq!(fast.pages.psp, slow.pages.psp);
            assert_eq!(fast.pages.pamup, slow.pages.pamup);
            assert_eq!(fast.epochs.len(), slow.epochs.len());
            for (a, b) in fast.epochs.iter().zip(slow.epochs.iter()) {
                assert_eq!(a.counters.epoch_cycles, b.counters.epoch_cycles);
                assert_eq!(a.counters.l2_accesses, b.counters.l2_accesses);
                assert_eq!(a.counters.l2_misses, b.counters.l2_misses);
                assert_eq!(a.counters.dram_local, b.counters.dram_local);
                assert_eq!(a.counters.dram_remote, b.counters.dram_remote);
                assert_eq!(
                    a.counters.controller_requests,
                    b.counters.controller_requests
                );
            }
        }
    }

    #[test]
    fn fault_time_is_tracked() {
        let r = run_tiny(ThpControls::small_only());
        assert!(r.lifetime.total_fault_cycles > 0);
        assert!(r.lifetime.max_fault_cycles > 0);
        assert!(r.lifetime.max_fault_fraction > 0.0);
        assert!(r.lifetime.max_fault_fraction < 1.0);
    }

    #[test]
    fn zero_fault_config_is_bit_identical() {
        // The pay-for-what-you-use guarantee: an explicit zero-rate plan,
        // a FaultConfig::none(), and the default config all coincide.
        let machine = MachineSpec::test_machine();
        let spec = tiny_spec(AccessPattern::PrivateSlices, 4);
        let mut config = SimConfig::fast_test();
        config.vmem.thp = ThpControls::thp();
        let plain = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        config.faults = crate::FaultConfig::uniform(99, 0.0);
        config.validate_each_epoch = true;
        let zeroed = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        assert_eq!(plain.runtime_cycles, zeroed.runtime_cycles);
        assert_eq!(plain.lifetime.ibs_samples, zeroed.lifetime.ibs_samples);
        assert_eq!(
            plain.lifetime.vmem.faults_2m,
            zeroed.lifetime.vmem.faults_2m
        );
        assert_eq!(plain.robustness, zeroed.robustness);
        assert_eq!(plain.robustness, crate::RobustnessStats::default());
    }

    #[test]
    fn huge_alloc_faults_force_4k_fallbacks() {
        let machine = MachineSpec::test_machine();
        let spec = tiny_spec(AccessPattern::PrivateSlices, 4);
        let mut config = SimConfig::fast_test();
        config.vmem.thp = ThpControls::thp();
        config.faults = crate::FaultConfig::uniform(7, 1.0);
        config.faults.rates.migrate_busy = 0.0;
        config.faults.rates.sample_loss = 0.0;
        config.faults.rates.sample_misattribution = 0.0;
        config.validate_each_epoch = true;
        let r = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        // Every huge allocation vetoed → the 4 MiB region faults in as
        // 1024 small pages instead of 2 huge ones.
        assert_eq!(r.lifetime.vmem.faults_2m, 0);
        assert_eq!(r.lifetime.vmem.faults_4k, 1024);
        assert!(r.robustness.fallback_allocs > 0);
    }

    #[test]
    fn faulty_runs_are_deterministic_and_sound() {
        let machine = MachineSpec::test_machine();
        let spec = tiny_spec(AccessPattern::PrivateSlices, 4);
        let mut config = SimConfig::fast_test();
        config.vmem.thp = ThpControls::thp();
        config.faults = crate::FaultConfig::uniform(21, 0.5);
        config.validate_each_epoch = true;
        let a = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        let b = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.robustness, b.robustness);
        assert!(a.robustness.dropped_samples > 0);
    }

    #[test]
    fn memory_pressure_is_survivable() {
        let machine = MachineSpec::test_machine();
        let spec = tiny_spec(AccessPattern::PrivateSlices, 4);
        let mut config = SimConfig::fast_test();
        config.vmem.thp = ThpControls::thp();
        // Reserve nearly all of node 0 before the run; faults must fall
        // back to other nodes or reclaim instead of panicking.
        config.faults.pressure = Some(crate::MemoryPressure {
            epoch: 0,
            node: NodeId(0),
            bytes: machine.nodes()[0].dram_bytes - (8 << 20),
            release_epoch: Some(2),
        });
        config.validate_each_epoch = true;
        let r = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        assert!(r.runtime_cycles > 0);
        assert_eq!(r.lifetime.total_ops, 9 * 400 * 4);
    }

    #[test]
    fn epoch_records_cover_run() {
        let r = run_tiny(ThpControls::thp());
        let rounds = 9; // 1 alloc + 8 compute
        let expected = rounds / 2 + 1; // rounds_per_epoch = 2, plus final
        assert_eq!(r.epochs.len(), expected);
        let ops: u64 = r.epochs.iter().map(|e| e.counters.mem_ops).sum();
        assert_eq!(ops, r.lifetime.total_ops);
    }

    /// A config that exercises every serialized subsystem: THP (2 MiB page
    /// tables, promotion), fault injection (RNG streams, pins, counters),
    /// attribution (ledger state), and page-stat tracking.
    fn ckpt_config() -> SimConfig {
        let mut config = SimConfig::fast_test();
        config.vmem.thp = ThpControls::thp();
        config.faults = crate::FaultConfig::uniform(21, 0.5);
        config.validate_each_epoch = true;
        config.attribution = true;
        config.track_page_stats = true;
        config
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_at_every_epoch() {
        let machine = MachineSpec::test_machine();
        let spec = tiny_spec(AccessPattern::PrivateSlices, 4);
        let config = ckpt_config();
        let full = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        let n_epochs = full.epochs.len() as u32;
        for epoch in 0..=n_epochs {
            let ckpt = Simulation::checkpoint_at(&machine, &spec, &config, &mut NullPolicy, epoch)
                .unwrap_or_else(|| panic!("run has {n_epochs} epochs, none at {epoch}"));
            assert_eq!(ckpt.epoch(), epoch);
            // Round-trip the envelope too: resume from decoded bytes.
            let ckpt = Checkpoint::from_bytes(&ckpt.to_bytes()).expect("envelope round-trip");
            let resumed = Simulation::resume(&machine, &spec, &config, &mut NullPolicy, &ckpt);
            assert_eq!(resumed, full, "resume from epoch {epoch} diverged");
        }
    }

    #[test]
    fn checkpoint_resume_digest_matches_uninterrupted_trace() {
        let machine = MachineSpec::test_machine();
        let spec = tiny_spec(AccessPattern::PrivateSlices, 4);
        let config = ckpt_config();
        let mut whole = DigestSink::new();
        let full = Simulation::run_traced(&machine, &spec, &config, &mut NullPolicy, &mut whole);
        let whole = whole.into_digest();

        // One sink threaded through both phases sees the same event stream.
        let mut spliced = DigestSink::new();
        let ckpt = Simulation::checkpoint_at_traced(
            &machine,
            &spec,
            &config,
            &mut NullPolicy,
            |_| {},
            Some(&mut spliced),
            2,
        )
        .expect("epoch 2 exists");
        let resumed = Simulation::resume_traced(
            &machine,
            &spec,
            &config,
            &mut NullPolicy,
            |_| {},
            Some(&mut spliced),
            &ckpt,
        );
        let spliced = spliced.into_digest();
        assert_eq!(resumed, full);
        assert_eq!(spliced.diff(&whole), None, "spliced trace digest diverged");
    }

    #[test]
    fn checkpoint_past_end_of_run_returns_none() {
        let machine = MachineSpec::test_machine();
        let spec = tiny_spec(AccessPattern::PrivateSlices, 4);
        let config = ckpt_config();
        assert!(
            Simulation::checkpoint_at(&machine, &spec, &config, &mut NullPolicy, 999).is_none()
        );
    }

    #[test]
    #[should_panic(expected = "different machine/spec/config")]
    fn resume_rejects_checkpoint_from_different_config() {
        let machine = MachineSpec::test_machine();
        let spec = tiny_spec(AccessPattern::PrivateSlices, 4);
        let config = ckpt_config();
        let ckpt = Simulation::checkpoint_at(&machine, &spec, &config, &mut NullPolicy, 1)
            .expect("epoch 1 exists");
        let mut other = config.clone();
        other.seed ^= 1;
        Simulation::resume(&machine, &spec, &other, &mut NullPolicy, &ckpt);
    }
}
