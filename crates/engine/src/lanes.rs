//! Process-wide pool of spare execution lanes for intra-run sharding.
//!
//! A *lane* is permission to run one extra OS thread inside a simulation
//! (see DESIGN.md §14). The pool exists so nested parallelism composes
//! with the bench runner's cell-level parallelism instead of fighting it:
//! the runner [`configure`]s the pool with the host cores it is not using
//! for whole cells, and each worker [`donate`]s its own slot back when it
//! runs out of queued cells — so the last long-running cells of a suite
//! automatically fan out across the cores that just went idle.
//!
//! A run whose `SimConfig::shards` is `0` (auto) asks the pool with
//! [`acquire`] at every epoch boundary and returns the lanes when the
//! epoch chunk completes, so a long cell picks up newly donated lanes at
//! its next boundary; an explicit shard count bypasses the pool entirely.
//! The pool only ever changes *how many threads* a run uses, never its
//! results: sharded execution is bit-identical to serial for any lane
//! count, including a count that varies epoch to epoch.
//!
//! The default pool is empty, so library users who never touch this
//! module get plain serial runs.

use std::sync::atomic::{AtomicIsize, Ordering};

static SLOTS: AtomicIsize = AtomicIsize::new(0);

/// Sets the number of spare lanes available to auto-sharded runs,
/// replacing whatever the pool held. Call once before a suite starts.
pub fn configure(n: usize) {
    SLOTS.store(n as isize, Ordering::SeqCst);
}

/// Adds `n` lanes to the pool — a worker going idle donates its slot so
/// still-running simulations can widen.
pub fn donate(n: usize) {
    SLOTS.fetch_add(n as isize, Ordering::SeqCst);
}

/// Takes up to `want` lanes from the pool; returns how many were granted
/// (possibly 0). The caller must [`release`] exactly that many.
pub fn acquire(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let mut got = 0usize;
    while got < want {
        let cur = SLOTS.load(Ordering::SeqCst);
        if cur <= 0 {
            break;
        }
        let take = (cur as usize).min(want - got);
        if SLOTS
            .compare_exchange(cur, cur - take as isize, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            got += take;
        }
    }
    got
}

/// Returns `n` previously [`acquire`]d lanes to the pool.
pub fn release(n: usize) {
    SLOTS.fetch_add(n as isize, Ordering::SeqCst);
}

/// Lanes currently available (for tests and runner diagnostics).
pub fn available() -> usize {
    SLOTS.load(Ordering::SeqCst).max(0) as usize
}

/// RAII grant of pool lanes: releases on drop, so early returns inside
/// the engine (checkpoint stops, panics) cannot leak slots.
pub struct Lease(usize);

impl Lease {
    /// Acquires up to `want` lanes from the pool.
    pub fn acquire(want: usize) -> Lease {
        Lease(acquire(want))
    }

    /// A lease of zero lanes (explicit shard counts bypass the pool).
    pub fn empty() -> Lease {
        Lease(0)
    }

    /// How many lanes this lease holds.
    pub fn count(&self) -> usize {
        self.0
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        release(self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pool is process-global state shared by every #[test] thread, so
    // these tests only assert *relative* effects under a lock.
    use std::sync::Mutex;
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn acquire_is_bounded_by_pool() {
        let _g = LOCK.lock().unwrap();
        configure(3);
        assert_eq!(acquire(2), 2);
        assert_eq!(acquire(2), 1);
        assert_eq!(acquire(2), 0);
        release(3);
        assert_eq!(available(), 3);
        configure(0);
    }

    #[test]
    fn lease_releases_on_drop() {
        let _g = LOCK.lock().unwrap();
        configure(4);
        {
            let lease = Lease::acquire(10);
            assert_eq!(lease.count(), 4);
            assert_eq!(available(), 0);
        }
        assert_eq!(available(), 4);
        configure(0);
    }

    #[test]
    fn donate_grows_the_pool() {
        let _g = LOCK.lock().unwrap();
        configure(0);
        donate(2);
        assert_eq!(acquire(5), 2);
        configure(0);
    }
}
