//! Deterministic structured event tracing.
//!
//! The simulation's end-of-run aggregates say *that* a run behaved some way;
//! the trace says *when* and *why*. Every observable state change — demand
//! faults, khugepaged promotions, policy splits/migrations/replications,
//! THP toggles, the policy's own decisions with their evidence, and a
//! per-epoch counter snapshot — is emitted as a [`TraceEvent`] through a
//! [`TraceSink`].
//!
//! Two invariants the engine guarantees:
//!
//! * **Zero cost when off.** [`crate::Simulation::run`] passes no sink and
//!   every emission site is guarded by an `Option` check; no event is even
//!   constructed. A traced run produces a bit-identical [`crate::SimResult`]
//!   to an untraced one — sinks only observe, they never feed back.
//! * **Determinism.** Events are emitted in simulation order, which is fully
//!   determined by `(spec, config)`. Two runs with the same inputs produce
//!   the same event stream, which is what makes golden [`TraceDigest`]s a
//!   meaningful regression oracle.

use crate::policy::{ActionError, PolicyAction};
use std::collections::VecDeque;
use std::io::Write;
use vmem::PageSize;

/// A policy's explanation of something it decided this epoch, with the
/// evidence it acted on. Policies record these via
/// [`crate::EpochCtx::note`]; the engine forwards them as
/// [`TraceEvent::Decision`] events. Purely observational: recording a
/// decision never changes simulation behaviour.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyDecision {
    /// The conservative component re-enabled large pages
    /// (Algorithm 1 lines 4–9).
    EnableThp {
        /// Fraction of L2 misses caused by page walks this epoch.
        walk_miss_fraction: f64,
        /// Worst core's fault-handler share of the epoch.
        max_fault_fraction: f64,
        /// Whether khugepaged promotion was re-enabled too.
        promote: bool,
    },
    /// The reactive component flipped the sticky `SPLIT_PAGES` flag
    /// (Algorithm 1 lines 10–15).
    SplitFlag {
        /// The new value of the flag.
        on: bool,
        /// Estimated LAR gain of migration alone, in percentage points.
        carrefour_gain_pp: f64,
        /// Estimated LAR gain of splitting first, in percentage points.
        split_gain_pp: f64,
    },
    /// A large page was split because several nodes access it
    /// (Algorithm 1 line 16).
    SplitShared {
        /// Base virtual address of the split page.
        base: u64,
        /// Number of distinct accessing nodes seen in the samples.
        sharers: usize,
    },
    /// A large page was split because it concentrates sampled traffic
    /// (Algorithm 1 line 19).
    SplitHot {
        /// Base virtual address of the split page.
        base: u64,
        /// DRAM samples that hit this page this epoch.
        samples: u32,
        /// All DRAM samples this epoch (the denominator).
        total: u32,
        /// Controller imbalance that engaged the hot-page pass.
        imbalance: f64,
    },
    /// A circuit breaker tripped and paused a class of actions.
    BreakerTrip {
        /// Which breaker: `"split"` or `"move"`.
        breaker: &'static str,
    },
}

/// One traced simulation event. `epoch` is the index of the epoch being
/// accumulated when the event occurred (events at an epoch boundary carry
/// the index of the epoch that just closed).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Emitted once, before the serial prelude.
    RunStart {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// Machine name.
        machine: String,
        /// Workload/policy seed.
        seed: u64,
    },
    /// A demand fault installed a fresh mapping.
    PageFault {
        /// Epoch under accumulation.
        epoch: u32,
        /// Base of the installed page.
        vbase: u64,
        /// Size of the installed page.
        size: PageSize,
        /// Node the frame was taken from.
        node: u16,
        /// Faulting thread.
        thread: u16,
    },
    /// khugepaged collapsed 512 small pages into a huge page.
    Promotion {
        /// Epoch that just closed.
        epoch: u32,
        /// Base of the collapsed 2 MiB range.
        vbase: u64,
    },
    /// A policy split succeeded (`scatter` for the batched
    /// demote-and-spread variant).
    Split {
        /// Epoch that just closed.
        epoch: u32,
        /// Base of the pre-split page.
        vbase: u64,
        /// Pre-split page size.
        size: PageSize,
        /// Whether sub-pages were scattered across nodes afterwards.
        scatter: bool,
        /// Sub-pages moved by the scatter (0 for a plain split).
        scattered: u64,
    },
    /// A policy migration succeeded.
    Migration {
        /// Epoch that just closed.
        epoch: u32,
        /// Base of the moved page.
        vbase: u64,
        /// Page size.
        size: PageSize,
        /// Node the page lived on.
        from: u16,
        /// Node the page moved to.
        to: u16,
    },
    /// A policy replication succeeded.
    Replication {
        /// Epoch that just closed.
        epoch: u32,
        /// Base of the replicated page.
        vbase: u64,
    },
    /// A store collapsed a replica set.
    ReplicaCollapse {
        /// Epoch under accumulation.
        epoch: u32,
        /// Base of the page whose replicas died.
        vbase: u64,
    },
    /// A policy toggled a THP switch.
    ThpToggle {
        /// Epoch that just closed.
        epoch: u32,
        /// Which knob: `"alloc"` or `"promote"`.
        knob: &'static str,
        /// The new value.
        on: bool,
    },
    /// A policy decision, with its evidence.
    Decision {
        /// Epoch that just closed.
        epoch: u32,
        /// The decision.
        decision: PolicyDecision,
    },
    /// A policy action failed (injected fault or natural vmem refusal).
    ActionFailed {
        /// Epoch that just closed.
        epoch: u32,
        /// The failed action.
        action: PolicyAction,
        /// Why it failed.
        error: ActionError,
    },
    /// Epoch boundary: the closing counters snapshot.
    EpochEnd {
        /// Epoch that just closed.
        epoch: u32,
        /// The snapshot.
        snap: EpochSnap,
    },
    /// A Mitosis-style sweep replicated page-table pages onto every node.
    TableReplication {
        /// Epoch that just closed.
        epoch: u32,
        /// Replica table frames created by this sweep.
        tables: u64,
    },
    /// A numaPTE-style page-table migration succeeded.
    TableMigration {
        /// Epoch that just closed.
        epoch: u32,
        /// Virtual address whose deepest table page moved.
        vbase: u64,
        /// Node the table page lived on.
        from: u16,
        /// Node the table page moved to.
        to: u16,
    },
}

/// Per-epoch observability snapshot emitted with [`TraceEvent::EpochEnd`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochSnap {
    /// Length of the epoch in cycles.
    pub epoch_cycles: u64,
    /// Memory-controller imbalance (std dev as percent of mean).
    pub imbalance: f64,
    /// Local access ratio over the epoch's DRAM accesses.
    pub lar: f64,
    /// Fraction of L2 misses caused by page-table walks.
    pub walk_miss_fraction: f64,
    /// L2 misses this epoch.
    pub l2_misses: u64,
    /// L2 misses caused by page walks this epoch.
    pub l2_walk_misses: u64,
    /// Worst core's fault-handler cycles this epoch.
    pub max_fault_cycles: u64,
    /// Requests serviced per controller this epoch.
    pub controller_requests: Vec<u64>,
    /// Queueing delay each controller will charge next epoch (cycles).
    pub controller_delays: Vec<u32>,
    /// Pages migrated by the policy this epoch.
    pub migrations: u64,
    /// Pages split by the policy this epoch.
    pub splits: u64,
    /// Pages collapsed by khugepaged this epoch.
    pub collapses: u64,
    /// Policy actions that failed this epoch.
    pub failed_actions: u64,
    /// 2 MiB allocation switch as the epoch closed.
    pub thp_alloc: bool,
    /// khugepaged promotion switch as the epoch closed.
    pub thp_promote: bool,
}

/// Canonical hash words for one [`PolicyAction`]: a discriminant word
/// followed by the action's fields. Shared by [`TraceEvent::hash_into`] and
/// [`epoch_output_fingerprint`] so the two encodings can never drift.
fn action_words(a: &PolicyAction, h: &mut Fnv64) {
    match a {
        PolicyAction::Migrate(v, n) => {
            h.word(0);
            h.word(*v);
            h.word(u64::from(n.0));
        }
        PolicyAction::Split(v) => {
            h.word(1);
            h.word(*v);
        }
        PolicyAction::SplitScatter(v) => {
            h.word(2);
            h.word(*v);
        }
        PolicyAction::Replicate(v) => {
            h.word(3);
            h.word(*v);
        }
        PolicyAction::SetThpAlloc(b) => {
            h.word(4);
            h.word(u64::from(*b));
        }
        PolicyAction::SetThpPromote(b) => {
            h.word(5);
            h.word(u64::from(*b));
        }
        PolicyAction::ReplicateTables => {
            h.word(6);
        }
        PolicyAction::MigrateTables(v, n) => {
            h.word(7);
            h.word(*v);
            h.word(u64::from(n.0));
        }
    }
}

/// Canonical hash words for one [`PolicyDecision`] (discriminant word, then
/// fields; floats by bit pattern). Shared by [`TraceEvent::hash_into`] and
/// [`epoch_output_fingerprint`].
fn decision_words(d: &PolicyDecision, h: &mut Fnv64) {
    match d {
        PolicyDecision::EnableThp {
            walk_miss_fraction,
            max_fault_fraction,
            promote,
        } => {
            h.word(0);
            h.word(walk_miss_fraction.to_bits());
            h.word(max_fault_fraction.to_bits());
            h.word(u64::from(*promote));
        }
        PolicyDecision::SplitFlag {
            on,
            carrefour_gain_pp,
            split_gain_pp,
        } => {
            h.word(1);
            h.word(u64::from(*on));
            h.word(carrefour_gain_pp.to_bits());
            h.word(split_gain_pp.to_bits());
        }
        PolicyDecision::SplitShared { base, sharers } => {
            h.word(2);
            h.word(*base);
            h.word(*sharers as u64);
        }
        PolicyDecision::SplitHot {
            base,
            samples,
            total,
            imbalance,
        } => {
            h.word(3);
            h.word(*base);
            h.word(u64::from(*samples));
            h.word(u64::from(*total));
            h.word(imbalance.to_bits());
        }
        PolicyDecision::BreakerTrip { breaker } => {
            h.word(4);
            h.bytes(breaker.as_bytes());
        }
    }
}

/// FNV-1a fingerprint of one epoch boundary's complete policy output: the
/// queued actions in issue order, the noted Algorithm-1 decisions in note
/// order, and the retry count the policy recorded. Given equal inputs, two
/// policies whose boundary outputs fingerprint equal drive the engine
/// identically through that boundary — the engine consumes *nothing else*
/// from the policy — which is the soundness basis of the runner's
/// prefix-sharing fork tree (DESIGN.md §15). The decision log alone would
/// not suffice: Carrefour's placement pass issues migrations it never
/// `note`s, so the fingerprint covers the action queue too.
pub fn epoch_output_fingerprint(
    epoch: u32,
    actions: &[PolicyAction],
    decisions: &[PolicyDecision],
    retries: u64,
) -> u64 {
    let mut h = Fnv64::new();
    h.word(u64::from(epoch));
    h.word(actions.len() as u64);
    for a in actions {
        action_words(a, &mut h);
    }
    h.word(decisions.len() as u64);
    for d in decisions {
        decision_words(d, &mut h);
    }
    h.word(retries);
    h.value()
}

impl TraceEvent {
    /// Short kind tag (used by counting sinks and the timeline renderer).
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::RunStart { .. } => EventKind::RunStart,
            TraceEvent::PageFault { .. } => EventKind::PageFault,
            TraceEvent::Promotion { .. } => EventKind::Promotion,
            TraceEvent::Split { .. } => EventKind::Split,
            TraceEvent::Migration { .. } => EventKind::Migration,
            TraceEvent::Replication { .. } => EventKind::Replication,
            TraceEvent::ReplicaCollapse { .. } => EventKind::ReplicaCollapse,
            TraceEvent::ThpToggle { .. } => EventKind::ThpToggle,
            TraceEvent::Decision { .. } => EventKind::Decision,
            TraceEvent::ActionFailed { .. } => EventKind::ActionFailed,
            TraceEvent::EpochEnd { .. } => EventKind::EpochEnd,
            TraceEvent::TableReplication { .. } => EventKind::TableReplication,
            TraceEvent::TableMigration { .. } => EventKind::TableMigration,
        }
    }

    /// The epoch the event belongs to (`RunStart` belongs to epoch 0).
    pub fn epoch(&self) -> u32 {
        match self {
            TraceEvent::RunStart { .. } => 0,
            TraceEvent::PageFault { epoch, .. }
            | TraceEvent::Promotion { epoch, .. }
            | TraceEvent::Split { epoch, .. }
            | TraceEvent::Migration { epoch, .. }
            | TraceEvent::Replication { epoch, .. }
            | TraceEvent::ReplicaCollapse { epoch, .. }
            | TraceEvent::ThpToggle { epoch, .. }
            | TraceEvent::Decision { epoch, .. }
            | TraceEvent::ActionFailed { epoch, .. }
            | TraceEvent::EpochEnd { epoch, .. }
            | TraceEvent::TableReplication { epoch, .. }
            | TraceEvent::TableMigration { epoch, .. } => *epoch,
        }
    }

    /// Folds the event into an FNV-1a hash, canonically: a discriminant
    /// byte followed by every field as little-endian words (floats by bit
    /// pattern). Strings contribute their UTF-8 bytes.
    pub fn hash_into(&self, h: &mut Fnv64) {
        fn size_code(s: PageSize) -> u64 {
            match s {
                PageSize::Size4K => 0,
                PageSize::Size2M => 1,
                PageSize::Size1G => 2,
            }
        }
        h.word(self.kind() as u64);
        match self {
            TraceEvent::RunStart {
                workload,
                policy,
                machine,
                seed,
            } => {
                h.bytes(workload.as_bytes());
                h.bytes(policy.as_bytes());
                h.bytes(machine.as_bytes());
                h.word(*seed);
            }
            TraceEvent::PageFault {
                epoch,
                vbase,
                size,
                node,
                thread,
            } => {
                h.word(u64::from(*epoch));
                h.word(*vbase);
                h.word(size_code(*size));
                h.word(u64::from(*node));
                h.word(u64::from(*thread));
            }
            TraceEvent::Promotion { epoch, vbase }
            | TraceEvent::Replication { epoch, vbase }
            | TraceEvent::ReplicaCollapse { epoch, vbase } => {
                h.word(u64::from(*epoch));
                h.word(*vbase);
            }
            TraceEvent::Split {
                epoch,
                vbase,
                size,
                scatter,
                scattered,
            } => {
                h.word(u64::from(*epoch));
                h.word(*vbase);
                h.word(size_code(*size));
                h.word(u64::from(*scatter));
                h.word(*scattered);
            }
            TraceEvent::Migration {
                epoch,
                vbase,
                size,
                from,
                to,
            } => {
                h.word(u64::from(*epoch));
                h.word(*vbase);
                h.word(size_code(*size));
                h.word(u64::from(*from));
                h.word(u64::from(*to));
            }
            TraceEvent::ThpToggle { epoch, knob, on } => {
                h.word(u64::from(*epoch));
                h.bytes(knob.as_bytes());
                h.word(u64::from(*on));
            }
            TraceEvent::Decision { epoch, decision } => {
                h.word(u64::from(*epoch));
                decision_words(decision, h);
            }
            TraceEvent::ActionFailed {
                epoch,
                action,
                error,
            } => {
                h.word(u64::from(*epoch));
                action_words(action, h);
                h.word(match error {
                    ActionError::Busy => 0,
                    ActionError::NoMemory => 1,
                    ActionError::Gone => 2,
                });
            }
            TraceEvent::EpochEnd { epoch, snap } => {
                h.word(u64::from(*epoch));
                h.word(snap.epoch_cycles);
                h.word(snap.imbalance.to_bits());
                h.word(snap.lar.to_bits());
                h.word(snap.walk_miss_fraction.to_bits());
                h.word(snap.l2_misses);
                h.word(snap.l2_walk_misses);
                h.word(snap.max_fault_cycles);
                for &r in &snap.controller_requests {
                    h.word(r);
                }
                for &d in &snap.controller_delays {
                    h.word(u64::from(d));
                }
                h.word(snap.migrations);
                h.word(snap.splits);
                h.word(snap.collapses);
                h.word(snap.failed_actions);
                h.word(u64::from(snap.thp_alloc));
                h.word(u64::from(snap.thp_promote));
            }
            TraceEvent::TableReplication { epoch, tables } => {
                h.word(u64::from(*epoch));
                h.word(*tables);
            }
            TraceEvent::TableMigration {
                epoch,
                vbase,
                from,
                to,
            } => {
                h.word(u64::from(*epoch));
                h.word(*vbase);
                h.word(u64::from(*from));
                h.word(u64::from(*to));
            }
        }
    }

    /// Serializes the event as one JSON object (hand-rolled: the build
    /// environment has no `serde_json`).
    pub fn to_json(&self) -> String {
        fn size_str(s: PageSize) -> &'static str {
            match s {
                PageSize::Size4K => "4K",
                PageSize::Size2M => "2M",
                PageSize::Size1G => "1G",
            }
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                let s = format!("{v}");
                if s.contains(['.', 'e', 'E']) {
                    s
                } else {
                    format!("{s}.0")
                }
            } else {
                "null".to_string()
            }
        }
        fn u64s(values: &[u64]) -> String {
            let inner: Vec<String> = values.iter().map(u64::to_string).collect();
            format!("[{}]", inner.join(","))
        }
        match self {
            TraceEvent::RunStart {
                workload,
                policy,
                machine,
                seed,
            } => format!(
                "{{\"ev\":\"run_start\",\"workload\":\"{workload}\",\
                 \"policy\":\"{policy}\",\"machine\":\"{machine}\",\"seed\":{seed}}}"
            ),
            TraceEvent::PageFault {
                epoch,
                vbase,
                size,
                node,
                thread,
            } => format!(
                "{{\"ev\":\"page_fault\",\"epoch\":{epoch},\"vbase\":{vbase},\
                 \"size\":\"{}\",\"node\":{node},\"thread\":{thread}}}",
                size_str(*size)
            ),
            TraceEvent::Promotion { epoch, vbase } => {
                format!("{{\"ev\":\"promotion\",\"epoch\":{epoch},\"vbase\":{vbase}}}")
            }
            TraceEvent::Split {
                epoch,
                vbase,
                size,
                scatter,
                scattered,
            } => format!(
                "{{\"ev\":\"split\",\"epoch\":{epoch},\"vbase\":{vbase},\
                 \"size\":\"{}\",\"scatter\":{scatter},\"scattered\":{scattered}}}",
                size_str(*size)
            ),
            TraceEvent::Migration {
                epoch,
                vbase,
                size,
                from,
                to,
            } => format!(
                "{{\"ev\":\"migration\",\"epoch\":{epoch},\"vbase\":{vbase},\
                 \"size\":\"{}\",\"from\":{from},\"to\":{to}}}",
                size_str(*size)
            ),
            TraceEvent::Replication { epoch, vbase } => {
                format!("{{\"ev\":\"replication\",\"epoch\":{epoch},\"vbase\":{vbase}}}")
            }
            TraceEvent::ReplicaCollapse { epoch, vbase } => {
                format!("{{\"ev\":\"replica_collapse\",\"epoch\":{epoch},\"vbase\":{vbase}}}")
            }
            TraceEvent::ThpToggle { epoch, knob, on } => format!(
                "{{\"ev\":\"thp_toggle\",\"epoch\":{epoch},\"knob\":\"{knob}\",\"on\":{on}}}"
            ),
            TraceEvent::Decision { epoch, decision } => {
                let body = match decision {
                    PolicyDecision::EnableThp {
                        walk_miss_fraction,
                        max_fault_fraction,
                        promote,
                    } => format!(
                        "\"what\":\"enable_thp\",\"walk_miss_fraction\":{},\
                         \"max_fault_fraction\":{},\"promote\":{promote}",
                        num(*walk_miss_fraction),
                        num(*max_fault_fraction)
                    ),
                    PolicyDecision::SplitFlag {
                        on,
                        carrefour_gain_pp,
                        split_gain_pp,
                    } => format!(
                        "\"what\":\"split_flag\",\"on\":{on},\
                         \"carrefour_gain_pp\":{},\"split_gain_pp\":{}",
                        num(*carrefour_gain_pp),
                        num(*split_gain_pp)
                    ),
                    PolicyDecision::SplitShared { base, sharers } => {
                        format!("\"what\":\"split_shared\",\"base\":{base},\"sharers\":{sharers}")
                    }
                    PolicyDecision::SplitHot {
                        base,
                        samples,
                        total,
                        imbalance,
                    } => format!(
                        "\"what\":\"split_hot\",\"base\":{base},\"samples\":{samples},\
                         \"total\":{total},\"imbalance\":{}",
                        num(*imbalance)
                    ),
                    PolicyDecision::BreakerTrip { breaker } => {
                        format!("\"what\":\"breaker_trip\",\"breaker\":\"{breaker}\"")
                    }
                };
                format!("{{\"ev\":\"decision\",\"epoch\":{epoch},{body}}}")
            }
            TraceEvent::ActionFailed {
                epoch,
                action,
                error,
            } => {
                let (kind, target) = match action {
                    PolicyAction::Migrate(v, n) => ("migrate", format!("{v},\"to\":{}", n.0)),
                    PolicyAction::Split(v) => ("split", v.to_string()),
                    PolicyAction::SplitScatter(v) => ("split_scatter", v.to_string()),
                    PolicyAction::Replicate(v) => ("replicate", v.to_string()),
                    PolicyAction::SetThpAlloc(b) => ("set_thp_alloc", u64::from(*b).to_string()),
                    PolicyAction::SetThpPromote(b) => {
                        ("set_thp_promote", u64::from(*b).to_string())
                    }
                    PolicyAction::ReplicateTables => ("replicate_tables", "0".to_string()),
                    PolicyAction::MigrateTables(v, n) => {
                        ("migrate_tables", format!("{v},\"to\":{}", n.0))
                    }
                };
                let err = match error {
                    ActionError::Busy => "busy",
                    ActionError::NoMemory => "no_memory",
                    ActionError::Gone => "gone",
                };
                format!(
                    "{{\"ev\":\"action_failed\",\"epoch\":{epoch},\
                     \"action\":\"{kind}\",\"vbase\":{target},\"error\":\"{err}\"}}"
                )
            }
            TraceEvent::EpochEnd { epoch, snap } => format!(
                "{{\"ev\":\"epoch_end\",\"epoch\":{epoch},\"epoch_cycles\":{},\
                 \"imbalance\":{},\"lar\":{},\"walk_miss_fraction\":{},\
                 \"l2_misses\":{},\"l2_walk_misses\":{},\"max_fault_cycles\":{},\
                 \"controller_requests\":{},\"controller_delays\":{},\
                 \"migrations\":{},\"splits\":{},\"collapses\":{},\
                 \"failed_actions\":{},\"thp_alloc\":{},\"thp_promote\":{}}}",
                snap.epoch_cycles,
                num(snap.imbalance),
                num(snap.lar),
                num(snap.walk_miss_fraction),
                snap.l2_misses,
                snap.l2_walk_misses,
                snap.max_fault_cycles,
                u64s(&snap.controller_requests),
                u64s(
                    &snap
                        .controller_delays
                        .iter()
                        .map(|&d| u64::from(d))
                        .collect::<Vec<_>>()
                ),
                snap.migrations,
                snap.splits,
                snap.collapses,
                snap.failed_actions,
                snap.thp_alloc,
                snap.thp_promote,
            ),
            TraceEvent::TableReplication { epoch, tables } => {
                format!("{{\"ev\":\"table_replication\",\"epoch\":{epoch},\"tables\":{tables}}}")
            }
            TraceEvent::TableMigration {
                epoch,
                vbase,
                from,
                to,
            } => format!(
                "{{\"ev\":\"table_migration\",\"epoch\":{epoch},\"vbase\":{vbase},\
                 \"from\":{from},\"to\":{to}}}"
            ),
        }
    }
}

/// Event kinds, for counting sinks and filters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// [`TraceEvent::RunStart`].
    RunStart = 0,
    /// [`TraceEvent::PageFault`].
    PageFault = 1,
    /// [`TraceEvent::Promotion`].
    Promotion = 2,
    /// [`TraceEvent::Split`].
    Split = 3,
    /// [`TraceEvent::Migration`].
    Migration = 4,
    /// [`TraceEvent::Replication`].
    Replication = 5,
    /// [`TraceEvent::ReplicaCollapse`].
    ReplicaCollapse = 6,
    /// [`TraceEvent::ThpToggle`].
    ThpToggle = 7,
    /// [`TraceEvent::Decision`].
    Decision = 8,
    /// [`TraceEvent::ActionFailed`].
    ActionFailed = 9,
    /// [`TraceEvent::EpochEnd`].
    EpochEnd = 10,
    /// [`TraceEvent::TableReplication`].
    TableReplication = 11,
    /// [`TraceEvent::TableMigration`].
    TableMigration = 12,
}

/// Where trace events go. Implementations must be pure observers: a sink
/// that fed information back into the simulation would break the
/// bit-identical-results guarantee.
pub trait TraceSink {
    /// Receives one event, in simulation order.
    fn emit(&mut self, event: &TraceEvent);

    /// Called once after the run's last event (flush buffers, close files).
    fn finish(&mut self) {}
}

/// FNV-1a, 64-bit: a small, dependency-free rolling hash. Not
/// cryptographic — it only needs to make accidental digest collisions
/// unlikely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hash state.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one little-endian word into the state.
    #[inline]
    pub fn word(&mut self, w: u64) {
        self.bytes(&w.to_le_bytes());
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Counts events by kind — the cheapest possible sink.
#[derive(Clone, Debug, Default)]
pub struct CountingSink {
    counts: [u64; 13],
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Events of `kind` seen so far.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// All events seen so far.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl TraceSink for CountingSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.counts[event.kind() as usize] += 1;
    }
}

/// Keeps the last `cap` events (flight-recorder mode: cheap enough to leave
/// on, detailed enough to answer "what just happened" after a failure).
#[derive(Clone, Debug)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `cap` events (`cap` = 0 keeps nothing).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap,
            buf: VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: &TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }
}

/// Retains every event (for renderers; memory-unbounded, test/tooling use).
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// A fresh collector.
    pub fn new() -> Self {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Streams events as JSON Lines to any writer.
pub struct JsonlSink<W: Write> {
    w: W,
    /// First I/O error encountered, if any (emission must never panic the
    /// simulation).
    pub error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w, error: None }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.w, "{}", event.to_json()) {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.w.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Fans one event stream out to several sinks.
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn TraceSink>,
}

impl<'a> TeeSink<'a> {
    /// Builds a tee over the given sinks.
    pub fn new(sinks: Vec<&'a mut dyn TraceSink>) -> Self {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink<'_> {
    fn emit(&mut self, event: &TraceEvent) {
        for s in &mut self.sinks {
            s.emit(event);
        }
    }

    fn finish(&mut self) {
        for s in &mut self.sinks {
            s.finish();
        }
    }
}

/// One epoch's digest line: event counts plus a rolling hash of every event
/// that fell into the epoch. Small enough to check in, strong enough that
/// any behavioural drift — an extra migration, a shifted split, a changed
/// counter — lands in `hash` even when the counts happen to match.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochDigest {
    /// Epoch index.
    pub epoch: u32,
    /// All events in the epoch (including the closing `EpochEnd`).
    pub events: u64,
    /// FNV-1a over the canonical encodings of the epoch's events.
    pub hash: u64,
    /// Demand faults.
    pub faults: u64,
    /// Policy splits applied.
    pub splits: u64,
    /// Policy migrations applied.
    pub migrations: u64,
    /// khugepaged collapses.
    pub collapses: u64,
    /// Policy decisions recorded.
    pub decisions: u64,
    /// Failed actions.
    pub failed: u64,
}

/// A whole run's digest: identification plus one [`EpochDigest`] per epoch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDigest {
    /// Workload name.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Machine name.
    pub machine: String,
    /// Seed the run was pinned to.
    pub seed: u64,
    /// Total simulated cycles (cross-checks the digest against the run).
    pub runtime_cycles: u64,
    /// Per-epoch digests, in order.
    pub epochs: Vec<EpochDigest>,
}

impl TraceDigest {
    /// Compares two digests; `None` when identical, otherwise a
    /// first-divergent-epoch report suitable for a test failure message.
    pub fn diff(&self, other: &TraceDigest) -> Option<String> {
        let id = |d: &TraceDigest| {
            format!(
                "{} / {} / {} (seed {})",
                d.workload, d.policy, d.machine, d.seed
            )
        };
        if id(self) != id(other) {
            return Some(format!(
                "digest identity mismatch: golden is {}, found {}",
                id(self),
                id(other)
            ));
        }
        let fmt = |e: &EpochDigest| {
            format!(
                "events={} hash={:016x} faults={} splits={} migrations={} \
                 collapses={} decisions={} failed={}",
                e.events,
                e.hash,
                e.faults,
                e.splits,
                e.migrations,
                e.collapses,
                e.decisions,
                e.failed
            )
        };
        for (g, f) in self.epochs.iter().zip(other.epochs.iter()) {
            if g != f {
                return Some(format!(
                    "behavioural drift in {}\nfirst divergent epoch: {}\n  \
                     golden: {}\n  found:  {}",
                    id(self),
                    g.epoch,
                    fmt(g),
                    fmt(f)
                ));
            }
        }
        if self.epochs.len() != other.epochs.len() {
            return Some(format!(
                "behavioural drift in {}\nepoch count changed: golden has {}, \
                 found {} (first {} epochs identical)",
                id(self),
                self.epochs.len(),
                other.epochs.len(),
                self.epochs.len().min(other.epochs.len())
            ));
        }
        if self.runtime_cycles != other.runtime_cycles {
            return Some(format!(
                "behavioural drift in {}\nper-epoch digests identical but \
                 runtime_cycles changed: golden {}, found {}",
                id(self),
                self.runtime_cycles,
                other.runtime_cycles
            ));
        }
        None
    }

    /// Serializes the digest as pretty JSON (the checked-in golden format).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        out.push_str(&format!("  \"policy\": \"{}\",\n", self.policy));
        out.push_str(&format!("  \"machine\": \"{}\",\n", self.machine));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"runtime_cycles\": {},\n", self.runtime_cycles));
        out.push_str("  \"epochs\": [\n");
        for (i, e) in self.epochs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"epoch\": {}, \"events\": {}, \"hash\": \"{:016x}\", \
                 \"faults\": {}, \"splits\": {}, \"migrations\": {}, \
                 \"collapses\": {}, \"decisions\": {}, \"failed\": {}}}{}\n",
                e.epoch,
                e.events,
                e.hash,
                e.faults,
                e.splits,
                e.migrations,
                e.collapses,
                e.decisions,
                e.failed,
                if i + 1 < self.epochs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the format written by [`TraceDigest::to_json`]. A minimal
    /// purpose-built parser (the build environment has no `serde_json`);
    /// tolerant of whitespace, intolerant of anything else.
    pub fn from_json(text: &str) -> Result<TraceDigest, String> {
        fn str_field(text: &str, key: &str) -> Result<String, String> {
            let pat = format!("\"{key}\"");
            let at = text.find(&pat).ok_or_else(|| format!("missing {key}"))?;
            let rest = &text[at + pat.len()..];
            let open = rest.find('"').ok_or_else(|| format!("bad {key}"))? + 1;
            let close = rest[open..].find('"').ok_or_else(|| format!("bad {key}"))?;
            Ok(rest[open..open + close].to_string())
        }
        fn u64_field(text: &str, key: &str) -> Result<u64, String> {
            let pat = format!("\"{key}\"");
            let at = text.find(&pat).ok_or_else(|| format!("missing {key}"))?;
            let rest = text[at + pat.len()..].trim_start_matches([':', ' ', '\t']);
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits.parse().map_err(|_| format!("bad {key}"))
        }
        let mut d = TraceDigest {
            workload: str_field(text, "workload")?,
            policy: str_field(text, "policy")?,
            machine: str_field(text, "machine")?,
            seed: u64_field(text, "seed")?,
            runtime_cycles: u64_field(text, "runtime_cycles")?,
            epochs: Vec::new(),
        };
        let epochs_at = text.find("\"epochs\"").ok_or("missing epochs")?;
        let mut rest = &text[epochs_at..];
        while let Some(open) = rest.find('{') {
            let close = rest[open..].find('}').ok_or("unterminated epoch object")?;
            let obj = &rest[open..open + close + 1];
            d.epochs.push(EpochDigest {
                epoch: u64_field(obj, "epoch")? as u32,
                events: u64_field(obj, "events")?,
                hash: u64::from_str_radix(&str_field(obj, "hash")?, 16)
                    .map_err(|_| "bad hash".to_string())?,
                faults: u64_field(obj, "faults")?,
                splits: u64_field(obj, "splits")?,
                migrations: u64_field(obj, "migrations")?,
                collapses: u64_field(obj, "collapses")?,
                decisions: u64_field(obj, "decisions")?,
                failed: u64_field(obj, "failed")?,
            });
            rest = &rest[open + close + 1..];
        }
        Ok(d)
    }
}

/// Accumulates a [`TraceDigest`] from the event stream: events fold into
/// the current epoch's counts and hash; [`TraceEvent::EpochEnd`] seals the
/// epoch. The golden-run regression harness is built on this sink.
#[derive(Clone, Debug, Default)]
pub struct DigestSink {
    digest: TraceDigest,
    current: EpochDigest,
    hasher: Fnv64,
    open: bool,
}

impl DigestSink {
    /// A fresh digest accumulator.
    pub fn new() -> Self {
        DigestSink {
            digest: TraceDigest::default(),
            current: EpochDigest::default(),
            hasher: Fnv64::new(),
            open: false,
        }
    }

    /// Consumes the sink, returning the digest (callers typically fill in
    /// `runtime_cycles` from the [`crate::SimResult`] afterwards).
    pub fn into_digest(mut self) -> TraceDigest {
        // Seal a trailing partial epoch, if the run ended mid-epoch.
        if self.open {
            self.seal();
        }
        self.digest
    }

    fn seal(&mut self) {
        self.current.hash = self.hasher.value();
        self.digest.epochs.push(self.current);
        self.current = EpochDigest {
            epoch: self.current.epoch + 1,
            ..EpochDigest::default()
        };
        self.hasher = Fnv64::new();
        self.open = false;
    }
}

impl TraceSink for DigestSink {
    fn emit(&mut self, event: &TraceEvent) {
        if let TraceEvent::RunStart {
            workload,
            policy,
            machine,
            seed,
        } = event
        {
            self.digest.workload = workload.clone();
            self.digest.policy = policy.clone();
            self.digest.machine = machine.clone();
            self.digest.seed = *seed;
        }
        self.open = true;
        self.current.events += 1;
        event.hash_into(&mut self.hasher);
        match event.kind() {
            EventKind::PageFault => self.current.faults += 1,
            EventKind::Split => self.current.splits += 1,
            EventKind::Migration => self.current.migrations += 1,
            EventKind::Promotion => self.current.collapses += 1,
            EventKind::Decision => self.current.decisions += 1,
            EventKind::ActionFailed => self.current.failed += 1,
            EventKind::EpochEnd => {
                self.current.epoch = event.epoch();
                self.seal();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(epoch: u32, vbase: u64) -> TraceEvent {
        TraceEvent::PageFault {
            epoch,
            vbase,
            size: PageSize::Size2M,
            node: 1,
            thread: 3,
        }
    }

    fn epoch_end(epoch: u32) -> TraceEvent {
        TraceEvent::EpochEnd {
            epoch,
            snap: EpochSnap {
                epoch_cycles: 1000,
                imbalance: 12.5,
                lar: 0.75,
                controller_requests: vec![10, 20],
                controller_delays: vec![0, 3],
                ..EpochSnap::default()
            },
        }
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut s = CountingSink::new();
        s.emit(&fault(0, 0x1000));
        s.emit(&fault(0, 0x2000));
        s.emit(&epoch_end(0));
        assert_eq!(s.count(EventKind::PageFault), 2);
        assert_eq!(s.count(EventKind::EpochEnd), 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let mut s = RingSink::new(2);
        for i in 0..5u64 {
            s.emit(&fault(0, i * 0x1000));
        }
        assert_eq!(s.dropped(), 3);
        let kept: Vec<u64> = s
            .events()
            .map(|e| match e {
                TraceEvent::PageFault { vbase, .. } => *vbase,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![0x3000, 0x4000]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut s = JsonlSink::new(Vec::<u8>::new());
        s.emit(&fault(2, 0x20_0000));
        s.emit(&epoch_end(2));
        s.finish();
        assert!(s.error.is_none());
        let text = String::from_utf8(s.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"page_fault\""));
        assert!(lines[0].contains("\"vbase\":2097152"));
        assert!(lines[1].contains("\"ev\":\"epoch_end\""));
        assert!(lines[1].contains("\"imbalance\":12.5"));
    }

    #[test]
    fn digest_sink_seals_epochs_and_hashes_deterministically() {
        let run = |n_faults: u64| {
            let mut s = DigestSink::new();
            s.emit(&TraceEvent::RunStart {
                workload: "w".into(),
                policy: "p".into(),
                machine: "m".into(),
                seed: 7,
            });
            for i in 0..n_faults {
                s.emit(&fault(0, i * 0x1000));
            }
            s.emit(&epoch_end(0));
            s.emit(&fault(1, 0x9000));
            s.emit(&epoch_end(1));
            s.into_digest()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a, b, "same stream, same digest");
        assert_eq!(a.epochs.len(), 2);
        assert_eq!(a.epochs[0].faults, 3);
        assert_eq!(a.epochs[0].events, 5); // run_start + 3 faults + epoch_end
        assert_eq!(a.epochs[1].faults, 1);
        let c = run(4);
        assert_ne!(a.epochs[0].hash, c.epochs[0].hash);
        assert_eq!(a.epochs[1].hash, c.epochs[1].hash, "later epochs equal");
    }

    #[test]
    fn digest_hash_catches_field_changes_counts_miss() {
        // Two epochs with the same event counts but a migration that went
        // to a different node: counts agree, hashes must not.
        let mk = |to: u16| {
            let mut s = DigestSink::new();
            s.emit(&TraceEvent::Migration {
                epoch: 0,
                vbase: 0x20_0000,
                size: PageSize::Size4K,
                from: 0,
                to,
            });
            s.emit(&epoch_end(0));
            s.into_digest()
        };
        let a = mk(1);
        let b = mk(2);
        assert_eq!(a.epochs[0].migrations, b.epochs[0].migrations);
        assert_ne!(a.epochs[0].hash, b.epochs[0].hash);
        assert!(a.diff(&b).is_some());
    }

    #[test]
    fn digest_json_round_trips() {
        let mut s = DigestSink::new();
        s.emit(&TraceEvent::RunStart {
            workload: "UA.B".into(),
            policy: "Carrefour-LP".into(),
            machine: "machine-a".into(),
            seed: 42,
        });
        s.emit(&fault(0, 0x1000));
        s.emit(&epoch_end(0));
        s.emit(&epoch_end(1));
        let mut d = s.into_digest();
        d.runtime_cycles = 123_456_789;
        let parsed = TraceDigest::from_json(&d.to_json()).unwrap();
        assert_eq!(d, parsed);
        assert!(d.diff(&parsed).is_none());
    }

    #[test]
    fn diff_reports_first_divergent_epoch() {
        let base = TraceDigest {
            workload: "UA.B".into(),
            policy: "THP".into(),
            machine: "machine-a".into(),
            seed: 42,
            runtime_cycles: 100,
            epochs: vec![
                EpochDigest {
                    epoch: 0,
                    events: 10,
                    hash: 1,
                    ..EpochDigest::default()
                },
                EpochDigest {
                    epoch: 1,
                    events: 20,
                    hash: 2,
                    ..EpochDigest::default()
                },
            ],
        };
        let mut drifted = base.clone();
        drifted.epochs[1].hash = 3;
        drifted.epochs[1].migrations = 7;
        let report = base.diff(&drifted).unwrap();
        assert!(report.contains("first divergent epoch: 1"), "{report}");
        assert!(report.contains("migrations=7"), "{report}");
        assert!(base.diff(&base.clone()).is_none());

        let mut truncated = base.clone();
        truncated.epochs.pop();
        let report = base.diff(&truncated).unwrap();
        assert!(report.contains("epoch count changed"), "{report}");

        let mut slower = base.clone();
        slower.runtime_cycles = 101;
        let report = base.diff(&slower).unwrap();
        assert!(report.contains("runtime_cycles changed"), "{report}");
    }

    #[test]
    fn tee_fans_out() {
        let mut count = CountingSink::new();
        let mut ring = RingSink::new(8);
        {
            let mut tee = TeeSink::new(vec![&mut count, &mut ring]);
            tee.emit(&fault(0, 0x1000));
            tee.finish();
        }
        assert_eq!(count.total(), 1);
        assert_eq!(ring.events().count(), 1);
    }
}
