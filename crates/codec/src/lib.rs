//! Minimal binary codec for the checkpoint/journal layer.
//!
//! The vendored `serde` is a no-op marker (the build is offline), so the
//! `ckpt-v1` snapshot format and the runner's cell journal serialize by
//! hand through this crate: a little-endian, length-prefixed byte stream
//! with no self-description. Every struct that participates writes its
//! fields in a fixed order via [`Enc`] and reads them back in the same
//! order via [`Dec`]; the order *is* the schema, and the engine guards it
//! with a schema hash in the checkpoint envelope (DESIGN.md §12).
//!
//! [`Dec`] panics on malformed input with a position-stamped message.
//! That is deliberate: every consumer validates an FNV-1a checksum (and a
//! schema hash) before decoding, so a decode failure is a programming
//! error — a save/load pair out of sync — not a runtime condition to
//! recover from.

#![forbid(unsafe_code)]

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice — the same function the engine's trace
/// digests use, so checkpoint checksums need no new primitives.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Append-only binary encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (cross-platform width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an `f64` by bit pattern — exact round-trip, no formatting.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes an `Option` discriminant followed by the value, if any.
    pub fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.bool(false),
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
        }
    }

    /// Writes a length-prefixed sequence.
    pub fn seq<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut f: impl FnMut(&mut Self, T),
    ) {
        self.usize(items.len());
        for it in items {
            f(self, it);
        }
    }
}

/// Sequential binary decoder over a byte slice.
///
/// # Panics
///
/// Every accessor panics (with the current offset) when the input is
/// exhausted or malformed — see the crate docs for why that is the right
/// contract here.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Current read offset (for error reporting by callers).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Asserts the stream was consumed exactly — a trailing-garbage guard
    /// for top-level decoders.
    pub fn finish(self) {
        assert!(
            self.is_done(),
            "codec: {} trailing byte(s) after decode at offset {}",
            self.buf.len() - self.pos,
            self.pos
        );
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            self.pos + n <= self.buf.len(),
            "codec: truncated input (need {n} byte(s) at offset {}, have {})",
            self.pos,
            self.buf.len() - self.pos
        );
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("width"))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("width"))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("width"))
    }

    /// Reads a `usize` written by [`Enc::usize`].
    pub fn usize(&mut self) -> usize {
        let v = self.u64();
        usize::try_from(v).unwrap_or_else(|_| panic!("codec: length {v} exceeds usize"))
    }

    /// Reads a bool.
    pub fn bool(&mut self) -> bool {
        match self.u8() {
            0 => false,
            1 => true,
            b => panic!("codec: invalid bool byte {b} at offset {}", self.pos - 1),
        }
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> &'a [u8] {
        let n = self.usize();
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> String {
        String::from_utf8(self.bytes().to_vec())
            .unwrap_or_else(|e| panic!("codec: invalid UTF-8 string: {e}"))
    }

    /// Reads an `Option` written by [`Enc::opt`].
    pub fn opt<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> Option<T> {
        if self.bool() {
            Some(f(self))
        } else {
            None
        }
    }

    /// Reads a length-prefixed sequence into a `Vec`.
    pub fn seq<T>(&mut self, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let n = self.usize();
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(f(self));
        }
        out
    }
}

/// Hex encoding for journal lines (JSON-safe, torn-write detectable:
/// an odd-length or non-hex tail fails [`from_hex`] cleanly).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
    }
    s
}

/// Inverse of [`to_hex`]; `None` on any malformed input (used to discard
/// torn journal lines rather than crash the resume path).
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let b = s.as_bytes();
    for pair in b.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(513);
        e.u32(70_000);
        e.u64(u64::MAX - 3);
        e.usize(42);
        e.bool(true);
        e.bool(false);
        e.f64(-0.125);
        e.str("héllo");
        e.bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8(), 7);
        assert_eq!(d.u16(), 513);
        assert_eq!(d.u32(), 70_000);
        assert_eq!(d.u64(), u64::MAX - 3);
        assert_eq!(d.usize(), 42);
        assert!(d.bool());
        assert!(!d.bool());
        assert_eq!(d.f64(), -0.125);
        assert_eq!(d.str(), "héllo");
        assert_eq!(d.bytes(), &[1, 2, 3]);
        d.finish();
    }

    #[test]
    fn f64_bit_exact_including_nan_and_negzero() {
        for v in [f64::NAN, -0.0, f64::INFINITY, 1.0 / 3.0] {
            let mut e = Enc::new();
            e.f64(v);
            let bytes = e.into_bytes();
            let got = Dec::new(&bytes).f64();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn seq_and_opt_round_trip() {
        let mut e = Enc::new();
        e.seq([1u64, 2, 3].into_iter(), |e, v| e.u64(v));
        e.opt(&Some(9u32), |e, v| e.u32(*v));
        e.opt(&None::<u32>, |e, v| e.u32(*v));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.seq(|d| d.u64()), vec![1, 2, 3]);
        assert_eq!(d.opt(|d| d.u32()), Some(9));
        assert_eq!(d.opt(|d| d.u32()), None);
        d.finish();
    }

    #[test]
    #[should_panic(expected = "truncated input")]
    fn truncation_panics_with_offset() {
        let mut d = Dec::new(&[1, 2]);
        d.u64();
    }

    #[test]
    #[should_panic(expected = "trailing byte")]
    fn trailing_garbage_is_rejected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u8();
        d.finish();
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        // Standard FNV-1a 64 test vector.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn hex_round_trip_and_torn_tails() {
        let data = [0u8, 1, 0xab, 0xff];
        let h = to_hex(&data);
        assert_eq!(h, "0001abff");
        assert_eq!(from_hex(&h).as_deref(), Some(&data[..]));
        assert_eq!(from_hex("0001abf"), None, "odd length = torn write");
        assert_eq!(from_hex("zz"), None);
    }
}
