//! Workload descriptors.

use serde::{Deserialize, Serialize};

/// How threads address a region during the compute phase.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum AccessPattern {
    /// All threads access the whole region uniformly at random (poor
    /// locality by construction — SSCA's irregular graph traversals,
    /// SPECjbb's shared heap).
    SharedUniform,
    /// The region is cut into one contiguous slice per thread; each thread
    /// accesses only its own slice (the NUMA-friendly OpenMP decomposition
    /// most NAS kernels use).
    PrivateSlices,
    /// Like [`AccessPattern::PrivateSlices`], but with temporal locality:
    /// each thread works inside a `block_bytes` window of its slice for
    /// `dwell_ops` operations, then advances to the next window (blocked
    /// loops — the cache- and TLB-friendly shape of tuned NAS kernels).
    PrivateBlocked {
        /// Working-window size in bytes.
        block_bytes: u64,
        /// Operations spent in a window before moving on.
        dwell_ops: u64,
    },
    /// The region is cut into `chunk_bytes` chunks dealt round-robin to
    /// threads; each thread accesses only its own chunks. With chunks
    /// smaller than a page size, pages of that size necessarily hold data
    /// of many threads — the paper's *page-level false sharing* (UA).
    InterleavedChunks {
        /// Chunk size in bytes (power of two, ≥ 64).
        chunk_bytes: u64,
        /// Operations spent inside one chunk before hopping to another
        /// (element-wise mesh processing has high temporal locality).
        dwell_ops: u64,
    },
    /// A `hot_share` fraction of accesses hits `count` hot spots of
    /// `hot_bytes` each, laid out `spacing_bytes` apart from the region
    /// start; the rest of the accesses are uniform over the region.
    /// With small pages each spot is its own page (spreadable); with large
    /// pages the spots coalesce into a handful of unsplittable hot pages —
    /// the paper's *hot-page effect* (CG).
    Hotspots {
        /// Number of hot spots.
        count: usize,
        /// Width of each hot spot in bytes.
        hot_bytes: u64,
        /// Distance between consecutive hot-spot starts.
        spacing_bytes: u64,
        /// Fraction of accesses that go to a hot spot, in `[0, 1]`.
        hot_share: f64,
    },
    /// Each thread streams sequentially through its private slice with the
    /// given stride, wrapping around (MapReduce scans, FT/IS sorting
    /// passes). High TLB pressure, high spatial locality.
    Stream {
        /// Bytes between consecutive accesses.
        stride: u64,
    },
}

/// One anonymous memory region of a workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Virtual base address (1 GiB-aligned; assigned by the spec builder).
    pub base: u64,
    /// Region length in bytes (multiple of 4 KiB).
    pub bytes: u64,
    /// Probability that a compute-phase access goes to this region.
    pub share: f64,
    /// Compute-phase access pattern.
    pub pattern: AccessPattern,
    /// Fraction of the region first-touched by thread 0 instead of its
    /// owning thread, from the region's start (a single "loader" thread
    /// initializing memory — pca's matrix setup). Skews placement at every
    /// page size.
    pub alloc_skew: f64,
    /// Fraction of the region (from its start) whose 2 MiB-aligned range
    /// *head pages* are pre-touched by thread 0 — a loader thread writing
    /// headers/metadata ahead of the workers (Java object headers, graph
    /// index arrays). Under 4 KiB pages this claims 1/512th of memory
    /// (harmless); under THP the head touch claims the whole 2 MiB page
    /// for thread 0's node. This is the mechanism behind the paper's
    /// "imbalance appears only under THP" profile (SSCA, SPECjbb).
    pub loader_headers: f64,
    /// Whether the region's data is read-write shared between threads at
    /// cache-line granularity (reductions, shared counters). Writes to such
    /// data cause coherence misses that always reach the home memory
    /// controller; the simulator models them as cache-bypassing stores.
    pub rw_shared: bool,
    /// Whether the region is never written after initialization (lookup
    /// tables, graph structure): the workload's write fraction does not
    /// apply to it, making it a candidate for page replication.
    pub read_only: bool,
}

/// One compute phase: after `rounds` rounds with these region shares, the
/// workload moves to the next phase (applications change behaviour over
/// time — Section 4.3 of the paper stresses that the algorithm must cater
/// to phase changes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Rounds this phase lasts.
    pub rounds: u32,
    /// Per-region access shares during this phase (must sum to 1 and have
    /// one entry per region).
    pub shares: Vec<f64>,
}

/// A complete workload description.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name ("CG.D", "wrmem", ...).
    pub name: String,
    /// Number of worker threads (one per core in the paper's runs).
    pub threads: usize,
    /// The memory regions.
    pub regions: Vec<RegionSpec>,
    /// Memory operations per thread per barrier-synchronized round.
    pub ops_per_round: u64,
    /// Compute-phase rounds (after the allocation phase completes).
    pub compute_rounds: u32,
    /// Non-memory cycles of work per operation (CPU intensity).
    pub think_cycles_per_op: u32,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Optional compute phases overriding the region shares over time; when
    /// empty the workload runs `compute_rounds` rounds with the regions'
    /// static shares. When non-empty, the phase list *replaces*
    /// `compute_rounds` (the total is the sum of phase rounds).
    pub phases: Vec<PhaseSpec>,
    /// Memory-level parallelism of data accesses: how many independent
    /// outstanding misses the code sustains (sparse kernels with
    /// independent gathers ≫ pointer chasing). The engine overlaps DRAM
    /// latency by this factor; request *rates* rise accordingly, which is
    /// what lets an imbalanced workload actually saturate a controller.
    pub mlp: u32,
}

impl WorkloadSpec {
    /// Total bytes across all regions.
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Total 4 KiB pages across all regions (the allocation-phase length).
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_bytes() / crate::gen::PAGE
    }

    /// Total compute rounds: the sum of phase lengths, or `compute_rounds`
    /// when no phases are declared.
    pub fn total_compute_rounds(&self) -> u32 {
        if self.phases.is_empty() {
            self.compute_rounds
        } else {
            self.phases.iter().map(|p| p.rounds).sum()
        }
    }

    /// Checks structural invariants; call after hand-building a spec.
    ///
    /// # Panics
    ///
    /// Panics if shares do not sum to ≈1, regions overlap or are misaligned,
    /// or thread/round counts are zero.
    pub fn validate(&self) {
        assert!(self.threads > 0, "{}: no threads", self.name);
        assert!(self.ops_per_round > 0, "{}: no ops", self.name);
        assert!(!self.regions.is_empty(), "{}: no regions", self.name);
        let share: f64 = self.regions.iter().map(|r| r.share).sum();
        assert!(
            (share - 1.0).abs() < 1e-6,
            "{}: region shares sum to {share}",
            self.name
        );
        for r in &self.regions {
            assert_eq!(r.base % (1 << 30), 0, "{}: unaligned region", self.name);
            assert_eq!(r.bytes % 4096, 0, "{}: ragged region", self.name);
            assert!(r.bytes > 0, "{}: empty region", self.name);
            assert!(
                (0.0..=1.0).contains(&r.alloc_skew),
                "{}: bad skew",
                self.name
            );
            assert!(
                (0.0..=1.0).contains(&r.loader_headers),
                "{}: bad loader_headers",
                self.name
            );
        }
        for (i, a) in self.regions.iter().enumerate() {
            for b in &self.regions[i + 1..] {
                let disjoint = a.base + a.bytes <= b.base || b.base + b.bytes <= a.base;
                assert!(disjoint, "{}: overlapping regions", self.name);
            }
        }
        for (i, p) in self.phases.iter().enumerate() {
            assert!(p.rounds > 0, "{}: phase {i} has no rounds", self.name);
            assert_eq!(
                p.shares.len(),
                self.regions.len(),
                "{}: phase {i} shares/regions mismatch",
                self.name
            );
            let sum: f64 = p.shares.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "{}: phase {i} shares sum to {sum}",
                self.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_region() -> WorkloadSpec {
        WorkloadSpec {
            name: "t".into(),
            threads: 2,
            regions: vec![RegionSpec {
                base: 1 << 30,
                bytes: 1 << 20,
                share: 1.0,
                pattern: AccessPattern::SharedUniform,
                alloc_skew: 0.0,
                loader_headers: 0.0,
                rw_shared: false,
                read_only: false,
            }],
            ops_per_round: 100,
            compute_rounds: 2,
            think_cycles_per_op: 0,
            write_fraction: 0.3,
            phases: Vec::new(),
            mlp: 1,
        }
    }

    #[test]
    fn footprint_sums_regions() {
        let s = one_region();
        assert_eq!(s.footprint_bytes(), 1 << 20);
        assert_eq!(s.footprint_pages(), 256);
        s.validate();
    }

    #[test]
    #[should_panic(expected = "shares sum")]
    fn bad_shares_panic() {
        let mut s = one_region();
        s.regions[0].share = 0.5;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_panics() {
        let mut s = one_region();
        let mut dup = s.regions[0];
        dup.share = 0.0;
        s.regions[0].share = 1.0;
        s.regions.push(dup);
        s.validate();
    }
}
