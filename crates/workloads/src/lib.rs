//! Synthetic workloads reproducing the paper's benchmark behaviours.
//!
//! The paper evaluates on NAS Parallel Benchmarks, Metis MapReduce, SSCA v2.2,
//! SPECjbb and (for Section 4.4) PARSEC streamcluster. Running those binaries
//! is impossible inside a simulator, but the paper itself explains every
//! result through a small set of memory-behaviour features:
//!
//! * **hot 4 KiB chunks that coalesce** into a few hot 2 MiB pages (CG),
//! * **page-level false sharing**: per-thread data interleaved at sub-2 MiB
//!   granularity (UA),
//! * **allocation-phase fault storms** that THP shortens 512× (WC, wrmem),
//! * **TLB pressure** from large, poorly-localized working sets (SSCA),
//! * **allocation skew** placing most memory on one node (SPECjbb, pca), and
//! * plain private/streaming phases that nothing disturbs (EP, BT, MG...).
//!
//! Each benchmark is a [`WorkloadSpec`]: a set of regions with an
//! [`AccessPattern`] each, an allocation phase, and a compute phase.
//! [`WorkloadGen`] turns a spec into per-thread deterministic access streams.
//! The specs' parameters are calibrated so the *measured* profile (Table 1 /
//! Table 2 metrics) matches the paper — the metrics are outputs of the
//! simulation, never inputs.
//!
//! # Examples
//!
//! ```
//! use numa_topology::MachineSpec;
//! use workloads::{Benchmark, WorkloadGen};
//!
//! let machine = MachineSpec::machine_a();
//! let spec = Benchmark::CgD.spec(&machine);
//! let mut gen = WorkloadGen::new(&spec, 42);
//! let op = gen.next_op(0);
//! assert!(spec.regions.iter().any(|r| op.vaddr >= r.base
//!     && op.vaddr < r.base + r.bytes));
//! ```

mod gen;
mod spec;
mod suite;

pub use gen::{Op, ThreadStream, WorkloadGen};
pub use spec::{AccessPattern, PhaseSpec, RegionSpec, WorkloadSpec};
pub use suite::Benchmark;
