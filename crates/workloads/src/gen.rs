//! Deterministic per-thread access-stream generation.

use crate::spec::{AccessPattern, RegionSpec, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Base page size; the allocation phase touches one of these per op.
pub const PAGE: u64 = 4096;

/// One memory operation emitted by a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op {
    /// Virtual address touched.
    pub vaddr: u64,
    /// Whether the operation is a store.
    pub is_write: bool,
    /// Store to line-level shared data: coherence forces it to the home
    /// memory controller (the engine bypasses the cache hierarchy).
    pub coherent_store: bool,
    /// Sequential access a hardware prefetcher would cover: DRAM latency is
    /// largely hidden (bandwidth is still consumed).
    pub prefetched: bool,
}

struct ThreadState {
    rng: SmallRng,
    /// 4 KiB page bases this thread first-touches, in touch order.
    alloc_list: Vec<u64>,
    alloc_pos: usize,
    /// Per-region streaming cursor (used by [`AccessPattern::Stream`]).
    stream_cursors: Vec<u64>,
    /// Compute ops issued so far (drives blocked-window rotation).
    ops_issued: u64,
}

impl ThreadState {
    /// Inert stand-in left behind by [`WorkloadGen::detach_thread`]. Any
    /// generation through it would diverge, so it must never be used — the
    /// real state is attached back before the generator is touched again.
    fn detached_placeholder() -> Self {
        ThreadState {
            rng: SmallRng::seed_from_u64(0),
            alloc_list: Vec::new(),
            alloc_pos: 0,
            stream_cursors: Vec::new(),
            ops_issued: 0,
        }
    }
}

/// One thread's detached stream state: everything that mutates while the
/// thread generates ops. A shard lane takes this out of the generator
/// ([`WorkloadGen::detach_thread`]), drives it through a shared
/// `&WorkloadGen` with [`WorkloadGen::stream_block`], and hands it back
/// with [`WorkloadGen::attach_thread`] at the merge — the op sequence is
/// bit-identical to undetached generation because this *is* the same
/// state, moved rather than copied.
pub struct ThreadStream(ThreadState);

/// Generates the access streams of every thread of one workload.
///
/// Generation is deterministic: the same `(spec, seed)` pair produces the
/// same streams, which keeps every experiment reproducible.
pub struct WorkloadGen {
    spec: WorkloadSpec,
    /// Cumulative region-share table for O(regions) region selection
    /// (per phase; a single entry when the workload has no phases).
    cumshares: Vec<Vec<f64>>,
    /// Cumulative round count at which each phase ends.
    phase_ends: Vec<u64>,
    threads: Vec<ThreadState>,
    alloc_rounds: u32,
    /// Loader-header touches executed serially by thread 0 before round 0.
    prelude: Vec<u64>,
}

/// The thread owning the compute-phase data at `offset` within a region.
fn owner_of(region: &RegionSpec, offset: u64, threads: usize) -> usize {
    match region.pattern {
        // Shared structures are initialized by whichever thread happens to
        // build that part (fine-grained parallel init): effectively random
        // 64 KiB chunks, modelled with a deterministic hash.
        AccessPattern::SharedUniform => {
            let chunk = offset / (64 * 1024);
            (chunk.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) as usize % threads
        }
        AccessPattern::InterleavedChunks { chunk_bytes, .. } => {
            // Twisted dealing: each super-row of `threads` chunks rotates
            // ownership by one, so page-size-aligned boundaries are owned
            // by different threads as the address grows (as they would be
            // under work-stealing); a plain modulo would hand every 2 MiB
            // boundary chunk to the same thread.
            let chunk = offset / chunk_bytes;
            let row = chunk / threads as u64;
            ((chunk + row) % threads as u64) as usize
        }
        _ => {
            let slice = region.bytes.div_ceil(threads as u64);
            ((offset / slice) as usize).min(threads - 1)
        }
    }
}

impl WorkloadGen {
    /// Builds the generator; `seed` fixes all randomness.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`] or a hotspot
    /// layout exceeds its region.
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        spec.validate();
        for r in &spec.regions {
            if let AccessPattern::Hotspots {
                count,
                hot_bytes,
                spacing_bytes,
                ..
            } = r.pattern
            {
                assert!(
                    count as u64 * spacing_bytes.max(hot_bytes) <= r.bytes,
                    "{}: hotspots exceed region",
                    spec.name
                );
            }
        }

        let t = spec.threads;
        // Build per-thread allocation lists: for every region, each 4 KiB
        // page is first-touched either by thread 0 (the skewed prefix) or by
        // its compute-phase owner, each thread touching its pages in
        // address order — the typical parallel-initialization loop.
        let mut alloc_lists: Vec<Vec<u64>> = vec![Vec::new(); t];
        // The loader's header touches happen before anything else: a loader
        // thread writes all headers/metadata first, then initializes its own
        // share. Keeping them first in thread 0's list means the header
        // touch wins the first-touch race for its 2 MiB range.
        let mut prelude: Vec<u64> = Vec::new();
        const HUGE: u64 = 2 << 20;
        for r in &spec.regions {
            let skew_end = ((r.bytes as f64 * r.alloc_skew) as u64 / PAGE) * PAGE;
            let header_end = ((r.bytes as f64 * r.loader_headers) as u64 / HUGE) * HUGE;
            let mut off = 0;
            while off < r.bytes {
                let is_header = off < header_end && off.is_multiple_of(HUGE);
                if is_header || off < skew_end {
                    // Loader work happens in the serial setup phase, before
                    // any worker runs — both full skewed initialization
                    // (pca's matrix build) and header seeding.
                    prelude.push(r.base + off);
                } else {
                    alloc_lists[owner_of(r, off, t)].push(r.base + off);
                }
                off += PAGE;
            }
        }

        let max_alloc = alloc_lists.iter().map(Vec::len).max().unwrap_or(0) as u64;
        let alloc_rounds = max_alloc.div_ceil(spec.ops_per_round) as u32;

        let cum_table = |shares: &[f64]| -> Vec<f64> {
            let mut cum = 0.0;
            shares
                .iter()
                .map(|s| {
                    cum += s;
                    cum
                })
                .collect()
        };
        let (cumshares, phase_ends) = if spec.phases.is_empty() {
            let shares: Vec<f64> = spec.regions.iter().map(|r| r.share).collect();
            (vec![cum_table(&shares)], vec![u64::MAX])
        } else {
            let mut ends = Vec::new();
            let mut acc = 0u64;
            let tables = spec
                .phases
                .iter()
                .map(|p| {
                    acc += u64::from(p.rounds);
                    ends.push(acc);
                    cum_table(&p.shares)
                })
                .collect();
            (tables, ends)
        };

        let threads = alloc_lists
            .into_iter()
            .enumerate()
            .map(|(i, alloc_list)| {
                let slice_starts = spec
                    .regions
                    .iter()
                    .map(|r| {
                        let slice = r.bytes.div_ceil(t as u64);
                        r.base + slice * i as u64
                    })
                    .collect();
                ThreadState {
                    rng: SmallRng::seed_from_u64(
                        seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                    ),
                    alloc_list,
                    alloc_pos: 0,
                    stream_cursors: slice_starts,
                    ops_issued: 0,
                }
            })
            .collect();

        WorkloadGen {
            spec: spec.clone(),
            cumshares,
            phase_ends,
            threads,
            alloc_rounds,
            prelude,
        }
    }

    /// The loader thread's serial header touches (first-touch stores run by
    /// thread 0 before the parallel phase begins).
    pub fn prelude(&self) -> &[u64] {
        &self.prelude
    }

    /// Rounds needed for the slowest thread to finish first-touching.
    #[inline]
    pub fn alloc_rounds(&self) -> u32 {
        self.alloc_rounds
    }

    /// Total rounds of the workload (allocation + compute).
    #[inline]
    pub fn total_rounds(&self) -> u32 {
        self.alloc_rounds + self.spec.total_compute_rounds()
    }

    /// The phase index a thread is in after issuing `ops` compute ops.
    #[inline]
    fn phase_of(&self, ops: u64) -> usize {
        phase_of_ops(&self.phase_ends, self.spec.ops_per_round, ops)
    }

    /// The spec this generator was built from.
    #[inline]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Whether `thread` is still in its allocation phase.
    #[inline]
    pub fn in_alloc_phase(&self, thread: usize) -> bool {
        let st = &self.threads[thread];
        st.alloc_pos < st.alloc_list.len()
    }

    /// Emits the next operation of `thread`.
    pub fn next_op(&mut self, thread: usize) -> Op {
        let phase = self.phase_of(self.threads[thread].ops_issued);
        let Self {
            spec,
            cumshares,
            threads,
            ..
        } = self;
        let st = &mut threads[thread];
        if st.alloc_pos < st.alloc_list.len() {
            let vaddr = st.alloc_list[st.alloc_pos];
            st.alloc_pos += 1;
            return Op {
                vaddr,
                is_write: true, // first touch is a store (demand-zero)
                coherent_store: false,
                prefetched: false,
            };
        }
        compute_op_in(spec, &cumshares[phase], thread, st)
    }

    /// Moves `thread`'s mutable stream state out of the generator so a
    /// shard lane can drive it through a shared `&WorkloadGen`
    /// ([`WorkloadGen::stream_block`]). The generator must not emit ops for
    /// this thread until [`WorkloadGen::attach_thread`] returns the state.
    pub fn detach_thread(&mut self, thread: usize) -> ThreadStream {
        ThreadStream(std::mem::replace(
            &mut self.threads[thread],
            ThreadState::detached_placeholder(),
        ))
    }

    /// Returns a stream detached by [`WorkloadGen::detach_thread`]; the
    /// generator resumes exactly where the lane left off.
    pub fn attach_thread(&mut self, thread: usize, stream: ThreadStream) {
        self.threads[thread] = stream.0;
    }

    /// Shared-reference twin of [`WorkloadGen::next_block`]: fills `out`
    /// with `thread`'s next `n` ops, mutating only the detached `stream`.
    /// Bit-identical to `next_block` on the attached generator because the
    /// state is the same object, moved rather than copied.
    pub fn stream_block(
        &self,
        thread: usize,
        stream: &mut ThreadStream,
        n: usize,
        out: &mut Vec<Op>,
    ) {
        block_into(
            &self.spec,
            &self.cumshares,
            &self.phase_ends,
            thread,
            &mut stream.0,
            n,
            out,
        );
    }

    /// Fills `out` (cleared first) with the next `n` operations of
    /// `thread` — exactly the ops `n` successive [`WorkloadGen::next_op`]
    /// calls would emit, with an identical RNG draw sequence. The batched
    /// form lifts phase derivation out of the per-op path: allocation-phase
    /// ops stream straight off the precomputed list, and compute-phase ops
    /// are generated in phase-constant chunks (the phase index can only
    /// change every `ops_per_round` ops).
    pub fn next_block(&mut self, thread: usize, n: usize, out: &mut Vec<Op>) {
        let Self {
            spec,
            cumshares,
            phase_ends,
            threads,
            ..
        } = self;
        block_into(
            spec,
            cumshares,
            phase_ends,
            thread,
            &mut threads[thread],
            n,
            out,
        );
    }

    /// Serializes the per-thread mutable state — RNG streams, allocation
    /// cursors, stream cursors, and issued-op counters — for the `ckpt-v1`
    /// snapshot. Everything else (allocation lists, prelude, share tables)
    /// is deterministic in `(spec, seed)` and rebuilt by
    /// [`WorkloadGen::new`].
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.seq(self.threads.iter(), |e, st| {
            for w in st.rng.state() {
                e.u64(w);
            }
            e.usize(st.alloc_pos);
            e.seq(st.stream_cursors.iter(), |e, &c| e.u64(c));
            e.u64(st.ops_issued);
        });
    }

    /// Restores state captured by [`WorkloadGen::save_into`] onto a
    /// generator built from the same `(spec, seed)`.
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        let n = d.usize();
        assert_eq!(n, self.threads.len(), "checkpoint workload thread count");
        for st in &mut self.threads {
            let s = [d.u64(), d.u64(), d.u64(), d.u64()];
            st.rng = SmallRng::from_state(s);
            st.alloc_pos = d.usize();
            let cursors = d.seq(|d| d.u64());
            assert_eq!(
                cursors.len(),
                st.stream_cursors.len(),
                "checkpoint stream cursor count"
            );
            st.stream_cursors = cursors;
            st.ops_issued = d.u64();
        }
    }
}

/// The phase index a thread is in after issuing `ops` compute ops
/// (free-function form shared by the attached and detached paths).
#[inline]
fn phase_of_ops(phase_ends: &[u64], ops_per_round: u64, ops: u64) -> usize {
    let round = ops / ops_per_round;
    phase_ends
        .iter()
        .position(|&end| round < end)
        .unwrap_or(phase_ends.len() - 1)
}

/// Fills `out` (cleared first) with the next `n` operations of `thread` —
/// exactly the ops `n` successive [`WorkloadGen::next_op`] calls would
/// emit, with an identical RNG draw sequence. The batched form lifts phase
/// derivation out of the per-op path: allocation-phase ops stream straight
/// off the precomputed list, and compute-phase ops are generated in
/// phase-constant chunks (the phase index can only change every
/// `ops_per_round` ops). Free function so both `&mut WorkloadGen`
/// (attached) and `&WorkloadGen` + [`ThreadStream`] (detached, sharded)
/// paths run literally the same code.
#[allow(clippy::too_many_arguments)]
fn block_into(
    spec: &WorkloadSpec,
    cumshares: &[Vec<f64>],
    phase_ends: &[u64],
    thread: usize,
    st: &mut ThreadState,
    n: usize,
    out: &mut Vec<Op>,
) {
    out.clear();
    out.reserve(n);
    let mut remaining = n;
    {
        let left = st.alloc_list.len() - st.alloc_pos;
        let take = remaining.min(left);
        for &vaddr in &st.alloc_list[st.alloc_pos..st.alloc_pos + take] {
            out.push(Op {
                vaddr,
                is_write: true, // first touch is a store (demand-zero)
                coherent_store: false,
                prefetched: false,
            });
        }
        st.alloc_pos += take;
        remaining -= take;
    }
    while remaining > 0 {
        let ops_issued = st.ops_issued;
        let phase = phase_of_ops(phase_ends, spec.ops_per_round, ops_issued);
        // Ops left before this phase can end; the final (or only) phase
        // never ends, so the whole rest of the block is one chunk.
        let chunk = if phase + 1 >= phase_ends.len() {
            remaining
        } else {
            let phase_end_ops = phase_ends[phase] * spec.ops_per_round;
            remaining.min((phase_end_ops - ops_issued) as usize)
        };
        for _ in 0..chunk {
            let op = compute_op_in(spec, &cumshares[phase], thread, st);
            out.push(op);
        }
        remaining -= chunk;
    }
}

/// One compute-phase op of `thread` under the cumulative region shares of
/// its current phase. Mutates only `st`, so detached streams can generate
/// through a shared `&WorkloadSpec`.
fn compute_op_in(spec: &WorkloadSpec, cumshare: &[f64], thread: usize, st: &mut ThreadState) -> Op {
    // Pick a region by the current phase's shares, then an address by
    // the region's pattern.
    let p: f64 = st.rng.random();
    let mut ridx = cumshare.len() - 1;
    for (i, &c) in cumshare.iter().enumerate() {
        if p < c {
            ridx = i;
            break;
        }
    }
    let region = &spec.regions[ridx];
    let t = spec.threads;
    let vaddr = match region.pattern {
        AccessPattern::SharedUniform => region.base + st.rng.random_range(0..region.bytes),
        AccessPattern::PrivateSlices => {
            let slice = region.bytes.div_ceil(t as u64);
            let lo = slice * thread as u64;
            let hi = (lo + slice).min(region.bytes);
            region.base + lo + st.rng.random_range(0..hi - lo)
        }
        AccessPattern::PrivateBlocked {
            block_bytes,
            dwell_ops,
        } => {
            let slice = region.bytes.div_ceil(t as u64);
            let lo = slice * thread as u64;
            let hi = (lo + slice).min(region.bytes);
            let span = hi - lo;
            let nblocks = (span / block_bytes).max(1);
            let block = (st.ops_issued / dwell_ops) % nblocks;
            let bstart = lo + block * block_bytes;
            let blen = block_bytes.min(span - (bstart - lo));
            region.base + bstart + st.rng.random_range(0..blen)
        }
        AccessPattern::InterleavedChunks {
            chunk_bytes,
            dwell_ops,
        } => {
            // Inverse of the twisted dealing in `owner_of`: in super-row
            // r, this thread owns chunk `r*t + ((thread - r) mod t)`.
            // The thread dwells in one of its chunks for `dwell_ops`
            // operations before moving to the next (mesh elements are
            // processed one at a time).
            let nchunks = (region.bytes / chunk_bytes).max(1);
            let rows = nchunks.div_ceil(t as u64);
            let r = (st.ops_issued / dwell_ops.max(1)) % rows;
            let j = (thread as u64 + t as u64 - r % t as u64) % t as u64;
            let chunk = (r * t as u64 + j).min(nchunks - 1);
            region.base + chunk * chunk_bytes + st.rng.random_range(0..chunk_bytes)
        }
        AccessPattern::Hotspots {
            count,
            hot_bytes,
            spacing_bytes,
            hot_share,
        } => {
            if st.rng.random::<f64>() < hot_share {
                let h = st.rng.random_range(0..count as u64);
                region.base + h * spacing_bytes + st.rng.random_range(0..hot_bytes)
            } else {
                region.base + st.rng.random_range(0..region.bytes)
            }
        }
        AccessPattern::Stream { stride } => {
            let slice = region.bytes.div_ceil(t as u64);
            let lo = region.base + slice * thread as u64;
            let hi = (lo + slice).min(region.base + region.bytes);
            let cur = &mut st.stream_cursors[ridx];
            if *cur < lo || *cur + stride > hi {
                *cur = lo;
            }
            let v = *cur;
            *cur += stride;
            v
        }
    };
    st.ops_issued += 1;
    let is_write = !region.read_only && st.rng.random::<f64>() < spec.write_fraction;
    Op {
        vaddr,
        is_write,
        // Migratory read-write sharing: lines bounce between caches, so
        // reads and writes alike are serviced by the home node.
        coherent_store: region.rw_shared,
        prefetched: matches!(region.pattern, AccessPattern::Stream { .. }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AccessPattern, RegionSpec, WorkloadSpec};

    fn spec_with(pattern: AccessPattern, threads: usize, bytes: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: "t".into(),
            threads,
            regions: vec![RegionSpec {
                base: 1 << 30,
                bytes,
                share: 1.0,
                pattern,
                alloc_skew: 0.0,
                loader_headers: 0.0,
                rw_shared: false,
                read_only: false,
            }],
            ops_per_round: 64,
            compute_rounds: 4,
            think_cycles_per_op: 0,
            write_fraction: 0.25,
            phases: Vec::new(),
            mlp: 1,
        }
    }

    fn drain_alloc(g: &mut WorkloadGen, thread: usize) {
        while g.in_alloc_phase(thread) {
            g.next_op(thread);
        }
    }

    #[test]
    fn alloc_phase_touches_every_page_once() {
        let spec = spec_with(AccessPattern::PrivateSlices, 2, 1 << 20);
        let mut g = WorkloadGen::new(&spec, 1);
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..2 {
            while g.in_alloc_phase(t) {
                let op = g.next_op(t);
                assert!(op.is_write);
                assert!(seen.insert(op.vaddr), "page touched twice");
            }
        }
        assert_eq!(seen.len(), 256);
        // Every page base, exactly.
        assert_eq!(*seen.iter().next().unwrap(), 1 << 30);
        assert_eq!(*seen.iter().last().unwrap(), (1 << 30) + (1 << 20) - 4096);
    }

    #[test]
    fn private_slices_stay_private() {
        let spec = spec_with(AccessPattern::PrivateSlices, 4, 1 << 20);
        let mut g = WorkloadGen::new(&spec, 7);
        for t in 0..4 {
            drain_alloc(&mut g, t);
        }
        let slice = (1u64 << 20) / 4;
        for t in 0..4usize {
            for _ in 0..200 {
                let op = g.next_op(t);
                let off = op.vaddr - (1 << 30);
                assert_eq!((off / slice) as usize, t);
            }
        }
    }

    #[test]
    fn interleaved_chunks_stay_owned_and_interleave() {
        let chunk = 8192u64;
        let spec = spec_with(
            AccessPattern::InterleavedChunks {
                chunk_bytes: chunk,
                dwell_ops: 1,
            },
            4,
            1 << 20,
        );
        let mut g = WorkloadGen::new(&spec, 3);
        for t in 0..4 {
            drain_alloc(&mut g, t);
        }
        for t in 0..4usize {
            for _ in 0..200 {
                let op = g.next_op(t);
                let off = op.vaddr - (1 << 30);
                // Twisted dealing: owner of chunk c is (c + c/T) mod T.
                let c = off / chunk;
                assert_eq!(((c + c / 4) % 4) as usize, t);
            }
        }
    }

    #[test]
    fn hotspots_receive_their_share() {
        let spec = spec_with(
            AccessPattern::Hotspots {
                count: 2,
                hot_bytes: 4096,
                spacing_bytes: 1 << 19,
                hot_share: 0.8,
            },
            1,
            1 << 20,
        );
        let mut g = WorkloadGen::new(&spec, 5);
        drain_alloc(&mut g, 0);
        let mut hot = 0;
        let n = 20_000;
        for _ in 0..n {
            let op = g.next_op(0);
            let off = op.vaddr - (1 << 30);
            let in_spot = (off < 4096) || ((1 << 19)..(1 << 19) + 4096).contains(&off);
            if in_spot {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        // 0.8 plus the sliver of uniform traffic that lands in the spots.
        assert!((0.78..0.84).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn stream_is_sequential_and_wraps() {
        let spec = spec_with(AccessPattern::Stream { stride: 64 }, 2, 1 << 20);
        let mut g = WorkloadGen::new(&spec, 2);
        for t in 0..2 {
            drain_alloc(&mut g, t);
        }
        let a = g.next_op(0).vaddr;
        let b = g.next_op(0).vaddr;
        assert_eq!(b, a + 64);
        // Thread 1 streams its own half.
        let c = g.next_op(1).vaddr;
        assert!(c >= (1 << 30) + (1 << 19));
    }

    #[test]
    fn alloc_skew_goes_to_the_serial_prelude() {
        let mut spec = spec_with(AccessPattern::PrivateSlices, 4, 1 << 20);
        spec.regions[0].alloc_skew = 0.5;
        let g = WorkloadGen::new(&spec, 1);
        // 256 pages total; the skewed first half is loader (prelude) work,
        // the remaining 128 pages belong to their slice owners (threads 2,3
        // own offsets ≥ 1<<19).
        assert_eq!(g.prelude().len(), 128);
        assert_eq!(g.threads[0].alloc_list.len(), 0);
        assert_eq!(g.threads[1].alloc_list.len(), 0);
        assert_eq!(g.threads[2].alloc_list.len(), 64);
        assert_eq!(g.threads[3].alloc_list.len(), 64);
    }

    #[test]
    fn next_block_matches_next_op_exactly() {
        // Across alloc→compute transition, all patterns, odd block sizes.
        for pattern in [
            AccessPattern::SharedUniform,
            AccessPattern::PrivateSlices,
            AccessPattern::Stream { stride: 64 },
            AccessPattern::Hotspots {
                count: 2,
                hot_bytes: 4096,
                spacing_bytes: 1 << 19,
                hot_share: 0.8,
            },
        ] {
            let spec = spec_with(pattern, 2, 1 << 20);
            let mut a = WorkloadGen::new(&spec, 11);
            let mut b = WorkloadGen::new(&spec, 11);
            let mut block = Vec::new();
            for round in 0..40 {
                for t in 0..2 {
                    let n = 1 + (round * 7 + t * 3) % 23;
                    b.next_block(t, n, &mut block);
                    assert_eq!(block.len(), n);
                    for (i, got) in block.iter().enumerate() {
                        assert_eq!(*got, a.next_op(t), "op {i} of block {round}/{t}");
                    }
                }
            }
        }
    }

    #[test]
    fn next_block_matches_across_phase_changes() {
        let mut spec = spec_with(AccessPattern::SharedUniform, 2, 1 << 20);
        spec.regions.push(RegionSpec {
            base: 2 << 30,
            bytes: 1 << 20,
            share: 0.0,
            pattern: AccessPattern::PrivateSlices,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        });
        spec.phases = vec![
            crate::spec::PhaseSpec {
                rounds: 2,
                shares: vec![1.0, 0.0],
            },
            crate::spec::PhaseSpec {
                rounds: 2,
                shares: vec![0.0, 1.0],
            },
        ];
        let mut a = WorkloadGen::new(&spec, 5);
        let mut b = WorkloadGen::new(&spec, 5);
        let mut block = Vec::new();
        // Blocks of 50 do not divide the 64-op rounds, so chunks straddle
        // phase boundaries.
        for _ in 0..20 {
            for t in 0..2 {
                b.next_block(t, 50, &mut block);
                for got in &block {
                    assert_eq!(*got, a.next_op(t));
                }
            }
        }
    }

    #[test]
    fn detached_stream_matches_attached_generation() {
        // Detach both threads, generate through the shared reference, attach
        // back, keep generating: the full sequence must equal a generator
        // that never detached — including across the alloc→compute
        // transition and phase changes.
        let mut spec = spec_with(AccessPattern::SharedUniform, 2, 1 << 20);
        spec.regions.push(RegionSpec {
            base: 2 << 30,
            bytes: 1 << 20,
            share: 0.0,
            pattern: AccessPattern::Stream { stride: 64 },
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        });
        spec.phases = vec![
            crate::spec::PhaseSpec {
                rounds: 2,
                shares: vec![1.0, 0.0],
            },
            crate::spec::PhaseSpec {
                rounds: 2,
                shares: vec![0.3, 0.7],
            },
        ];
        let mut serial = WorkloadGen::new(&spec, 42);
        let mut sharded = WorkloadGen::new(&spec, 42);
        let (mut want, mut got) = (Vec::new(), Vec::new());
        for cycle in 0..6 {
            // Alternate detached and attached generation in 50-op blocks.
            let mut streams: Vec<ThreadStream> = (0..2).map(|t| sharded.detach_thread(t)).collect();
            for (t, stream) in streams.iter_mut().enumerate() {
                sharded.stream_block(t, stream, 50, &mut got);
                serial.next_block(t, 50, &mut want);
                assert_eq!(got, want, "detached cycle {cycle} thread {t}");
            }
            for (t, stream) in streams.into_iter().enumerate() {
                sharded.attach_thread(t, stream);
            }
            for t in 0..2 {
                sharded.next_block(t, 31, &mut got);
                serial.next_block(t, 31, &mut want);
                assert_eq!(got, want, "attached cycle {cycle} thread {t}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = spec_with(AccessPattern::SharedUniform, 2, 1 << 20);
        let mut a = WorkloadGen::new(&spec, 9);
        let mut b = WorkloadGen::new(&spec, 9);
        for t in 0..2 {
            for _ in 0..500 {
                assert_eq!(a.next_op(t), b.next_op(t));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = spec_with(AccessPattern::SharedUniform, 1, 1 << 20);
        let mut a = WorkloadGen::new(&spec, 1);
        let mut b = WorkloadGen::new(&spec, 2);
        drain_alloc(&mut a, 0);
        drain_alloc(&mut b, 0);
        let same = (0..100).filter(|_| a.next_op(0) == b.next_op(0)).count();
        assert!(same < 5);
    }

    #[test]
    fn round_math() {
        let spec = spec_with(AccessPattern::PrivateSlices, 2, 1 << 20);
        let g = WorkloadGen::new(&spec, 1);
        // 128 pages per thread at 64 ops/round = 2 alloc rounds.
        assert_eq!(g.alloc_rounds(), 2);
        assert_eq!(g.total_rounds(), 6);
    }
}
