//! The paper's benchmark suite as calibrated workload descriptors.
//!
//! Every benchmark the paper evaluates (Figures 1–5, Tables 1–3, plus
//! streamcluster from Section 4.4) has an entry here. Footprints are scaled
//! down ~64× relative to the paper's runs — the simulator scales caches and
//! TLBs by the same factor, preserving miss ratios — and the behavioural
//! parameters (hot spots, chunk interleaving, allocation skew, intensity)
//! are calibrated against the paper's own profiling tables.

use crate::spec::{AccessPattern, RegionSpec, WorkloadSpec};
use numa_topology::MachineSpec;
use serde::{Deserialize, Serialize};

/// All benchmarks of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Benchmark {
    /// NAS BT class B — block tridiagonal solver, NUMA-friendly slices.
    BtB,
    /// NAS CG class D — conjugate gradient; the paper's hot-page case.
    CgD,
    /// NAS DC class A — data cube; streaming with heavy CPU work.
    DcA,
    /// NAS EP class C — embarrassingly parallel, but with its small shared
    /// table allocated by one thread (the latent issue Figure 5 shows
    /// Carrefour-LP fixing).
    EpC,
    /// NAS FT class C — 3-D FFT; large streaming transposes.
    FtC,
    /// NAS IS class D — integer sort; the suite's largest footprint.
    IsD,
    /// NAS LU class B — LU solver; mildly interleaved boundary data.
    LuB,
    /// NAS MG class D — multigrid; private slices, large footprint.
    MgD,
    /// NAS SP class B — pentadiagonal solver with skewed initialization.
    SpB,
    /// NAS UA class B — unstructured adaptive mesh; the paper's page-level
    /// false-sharing case.
    UaB,
    /// NAS UA class C — same pattern, larger problem.
    UaC,
    /// Metis word count — allocation-phase dominated (the paper's biggest
    /// THP winner).
    Wc,
    /// Metis word reverse-index.
    Wr,
    /// Metis k-means clustering.
    Kmeans,
    /// Metis matrix multiply — shared B matrix, skew-allocated.
    MatrixMultiply,
    /// Metis principal component analysis — single-thread-initialized
    /// matrix; the latent NUMA issue Figure 5 shows Carrefour-LP fixing.
    Pca,
    /// Metis in-memory reverse index (wrmem).
    Wrmem,
    /// SSCA v2.2 graph analysis, problem size 20 — TLB-bound irregular
    /// accesses.
    Ssca,
    /// SPECjbb 2005 — shared-heap Java server workload.
    SpecJbb,
    /// PARSEC streamcluster — Section 4.4's 1 GiB-page victim.
    Streamcluster,
}

impl Benchmark {
    /// Every benchmark, in the paper's Figure 1 order (streamcluster last).
    pub fn all() -> &'static [Benchmark] {
        use Benchmark::*;
        &[
            BtB,
            CgD,
            DcA,
            EpC,
            FtC,
            IsD,
            LuB,
            MgD,
            SpB,
            UaB,
            UaC,
            Wc,
            Wr,
            Kmeans,
            MatrixMultiply,
            Pca,
            Wrmem,
            Ssca,
            SpecJbb,
            Streamcluster,
        ]
    }

    /// The benchmarks whose NUMA metrics THP affects by more than 15 %
    /// (the paper's Section 3 selection, shown in Figures 2–4).
    pub fn numa_affected() -> &'static [Benchmark] {
        use Benchmark::*;
        &[CgD, LuB, UaB, UaC, MatrixMultiply, Wrmem, Ssca, SpecJbb]
    }

    /// The complement set shown in Figure 5.
    pub fn numa_unaffected() -> &'static [Benchmark] {
        use Benchmark::*;
        &[BtB, DcA, EpC, FtC, IsD, MgD, SpB, Wc, Wr, Kmeans, Pca]
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        use Benchmark::*;
        match self {
            BtB => "BT.B",
            CgD => "CG.D",
            DcA => "DC.A",
            EpC => "EP.C",
            FtC => "FT.C",
            IsD => "IS.D",
            LuB => "LU.B",
            MgD => "MG.D",
            SpB => "SP.B",
            UaB => "UA.B",
            UaC => "UA.C",
            Wc => "WC",
            Wr => "WR",
            Kmeans => "Kmeans",
            MatrixMultiply => "MatrixMultiply",
            Pca => "pca",
            Wrmem => "wrmem",
            Ssca => "SSCA.20",
            SpecJbb => "SPECjbb",
            Streamcluster => "streamcluster",
        }
    }

    /// Builds the calibrated workload spec for this benchmark on `machine`.
    pub fn spec(self, machine: &MachineSpec) -> WorkloadSpec {
        let t = machine.total_cores();
        let b = SpecBuilder::new(self.name(), t);
        use AccessPattern::*;
        use Benchmark::*;
        const MIB: u64 = 1 << 20;
        // Per-thread sizing for sliced/streamed regions: slices must be a
        // multiple of 2 MiB so huge pages never straddle two threads' data
        // (real NAS slices are hundreds of MiB; straddling only happens at
        // their edges, i.e. never at our granularity either).
        let pt = |mib_per_thread: u64| mib_per_thread * MIB * t as u64;
        match self {
            // --- NUMA-friendly kernels: private slices, moderate intensity.
            BtB => b
                .region(
                    pt(2),
                    1.0,
                    PrivateBlocked {
                        block_bytes: 256 * 1024,
                        dwell_ops: 1500,
                    },
                )
                .compute(40, 1000, 60, 0.3)
                .build(),
            DcA => b
                .region(pt(2), 1.0, Stream { stride: 256 })
                .compute(40, 1000, 150, 0.4)
                .build(),
            FtC => b
                .region(pt(4), 0.7, Stream { stride: 128 })
                .region(16 * MIB, 0.3, SharedUniform)
                .compute(36, 1200, 40, 0.4)
                .build(),
            IsD => b
                .region(pt(4), 0.8, Stream { stride: 128 })
                .region(16 * MIB, 0.2, SharedUniform)
                .compute(34, 1200, 25, 0.5)
                .build(),
            MgD => b
                .region(
                    pt(2),
                    1.0,
                    PrivateBlocked {
                        block_bytes: 256 * 1024,
                        dwell_ops: 1500,
                    },
                )
                .compute(40, 1000, 50, 0.3)
                .build(),
            Kmeans => b
                .region(
                    pt(2),
                    0.9,
                    PrivateBlocked {
                        block_bytes: 256 * 1024,
                        dwell_ops: 1500,
                    },
                )
                .region(2 * MIB, 0.1, SharedUniform)
                .compute(40, 1000, 80, 0.2)
                .build(),

            // --- The hot-page case: CG's sparse vector entries coalesce.
            // 24 hot 4 KiB chunks spaced 256 KiB apart: under 4 KiB pages
            // they spread over 24 first-touchers (balanced); under 2 MiB
            // they coalesce into 3 huge pages that cannot be balanced
            // across 4 or 8 nodes.
            CgD => b
                .region_full(
                    6 * MIB,
                    0.75,
                    Hotspots {
                        count: 24,
                        hot_bytes: 4096,
                        spacing_bytes: 256 * 1024,
                        hot_share: 0.95,
                    },
                    0.0,
                    0.34,
                )
                .rw_shared()
                .region(
                    pt(2),
                    0.25,
                    PrivateBlocked {
                        block_bytes: 256 * 1024,
                        dwell_ops: 1500,
                    },
                )
                .compute(40, 1200, 4, 0.3)
                .mlp(5)
                .build(),

            // --- Page-level false sharing: UA's unstructured mesh deals
            // 8 KiB element blocks round-robin to threads. Under 4 KiB
            // pages each block's pages are thread-private; under 2 MiB
            // every huge page holds blocks of many threads.
            UaB => b
                .region(
                    32 * MIB,
                    0.5,
                    InterleavedChunks {
                        chunk_bytes: 8192,
                        dwell_ops: 60,
                    },
                )
                .region(
                    pt(2),
                    0.5,
                    PrivateBlocked {
                        block_bytes: 256 * 1024,
                        dwell_ops: 1500,
                    },
                )
                .compute(40, 1000, 8, 0.3)
                .build(),
            UaC => b
                .region(
                    48 * MIB,
                    0.5,
                    InterleavedChunks {
                        chunk_bytes: 8192,
                        dwell_ops: 60,
                    },
                )
                .region(
                    pt(3),
                    0.5,
                    PrivateBlocked {
                        block_bytes: 256 * 1024,
                        dwell_ops: 1500,
                    },
                )
                .compute(40, 1200, 8, 0.3)
                .build(),

            // --- LU: mildly interleaved boundary exchange, mostly private.
            LuB => b
                .region(
                    8 * MIB,
                    0.15,
                    InterleavedChunks {
                        chunk_bytes: 16384,
                        dwell_ops: 80,
                    },
                )
                .region(
                    pt(3),
                    0.85,
                    PrivateBlocked {
                        block_bytes: 256 * 1024,
                        dwell_ops: 1500,
                    },
                )
                .compute(40, 1000, 45, 0.3)
                .build(),

            // --- Skew-allocated solvers: memory lands on one node, a latent
            // imbalance Carrefour fixes with or without THP.
            SpB => b
                .region_full(24 * MIB, 1.0, SharedUniform, 0.8, 0.0)
                .compute(40, 1000, 30, 0.3)
                .build(),
            EpC => b
                .region_full(8 * MIB, 1.0, SharedUniform, 1.0, 0.0)
                .compute(40, 900, 45, 0.1)
                .build(),
            Pca => b
                .region_full(24 * MIB, 1.0, SharedUniform, 1.0, 0.0)
                .compute(44, 1100, 15, 0.2)
                .build(),

            // --- Allocation-phase-dominated MapReduce jobs.
            Wc => b
                .region(pt(8), 0.85, Stream { stride: 96 })
                .region(16 * MIB, 0.15, SharedUniform)
                .compute(8, 1400, 12, 0.6)
                .build(),
            Wr => b
                .region(pt(6), 0.85, Stream { stride: 96 })
                .region(12 * MIB, 0.15, SharedUniform)
                .compute(10, 1400, 16, 0.55)
                .build(),
            Wrmem => b
                .region(pt(7), 0.75, Stream { stride: 96 })
                .region(
                    16 * MIB,
                    0.25,
                    InterleavedChunks {
                        chunk_bytes: 16384,
                        dwell_ops: 80,
                    },
                )
                .compute(9, 1400, 14, 0.5)
                .build(),
            MatrixMultiply => b
                .region(
                    pt(2),
                    0.55,
                    PrivateBlocked {
                        block_bytes: 256 * 1024,
                        dwell_ops: 1500,
                    },
                )
                .region_full(12 * MIB, 0.45, SharedUniform, 0.0, 0.2)
                .compute(36, 1100, 35, 0.1)
                .build(),

            // --- TLB-bound graph analysis whose loader thread writes the
            // graph index headers first (imbalance only under THP).
            Ssca => b
                .region_full(128 * MIB, 0.9, SharedUniform, 0.0, 0.15)
                .region(pt(1), 0.1, PrivateSlices)
                .compute(100, 1200, 6, 0.2)
                .build(),

            // --- Shared-heap server workload: loader-thread heap headers,
            // uniform object traffic, real TLB pressure.
            SpecJbb => b
                .region_full(48 * MIB, 0.85, SharedUniform, 0.0, 0.3)
                .region(pt(1), 0.15, PrivateSlices)
                .compute(100, 1100, 30, 0.35)
                .build(),

            // --- Section 4.4: fits in a handful of 2 MiB pages but in ONE
            // 1 GiB page, which then concentrates everything on one node.
            // Streamcluster's per-thread point blocks are megabyte-scale:
            // private under 2 MiB pages (no THP problem, which is why the
            // paper left PARSEC out of the main study) but hopelessly
            // coalesced inside a single 1 GiB page.
            Streamcluster => b
                .region(
                    16 * MIB,
                    0.8,
                    InterleavedChunks {
                        chunk_bytes: 1 << 20,
                        dwell_ops: 30,
                    },
                )
                .region(4 * MIB, 0.2, SharedUniform)
                .compute(150, 1000, 4, 0.25)
                .mlp(4)
                .build(),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder assigning region bases automatically (2 GiB apart).
struct SpecBuilder {
    name: String,
    threads: usize,
    regions: Vec<RegionSpec>,
    next_base: u64,
    ops_per_round: u64,
    compute_rounds: u32,
    think: u32,
    write_fraction: f64,
    mlp: u32,
}

impl SpecBuilder {
    fn new(name: &str, threads: usize) -> Self {
        SpecBuilder {
            name: name.to_string(),
            threads,
            regions: Vec::new(),
            next_base: 64 << 30,
            ops_per_round: 1000,
            compute_rounds: 30,
            think: 50,
            write_fraction: 0.3,
            mlp: 1,
        }
    }

    fn region(self, bytes: u64, share: f64, pattern: AccessPattern) -> Self {
        self.region_full(bytes, share, pattern, 0.0, 0.0)
    }

    /// Adds a region first-touched by a loader thread: `alloc_skew` of it
    /// entirely, `loader_headers` of it via 2 MiB-range head pages.
    fn region_full(
        mut self,
        bytes: u64,
        share: f64,
        pattern: AccessPattern,
        alloc_skew: f64,
        loader_headers: f64,
    ) -> Self {
        self.regions.push(RegionSpec {
            base: self.next_base,
            bytes,
            share,
            pattern,
            alloc_skew,
            loader_headers,
            rw_shared: false,
            read_only: false,
        });
        self.next_base += 2 << 30;
        self
    }

    /// Sets the workload's memory-level parallelism.
    fn mlp(mut self, mlp: u32) -> Self {
        self.mlp = mlp;
        self
    }

    /// Marks the most recently added region as read-write line-shared.
    fn rw_shared(mut self) -> Self {
        self.regions
            .last_mut()
            .expect("rw_shared needs a region")
            .rw_shared = true;
        self
    }

    fn compute(mut self, rounds: u32, ops_per_round: u64, think: u32, write_fraction: f64) -> Self {
        self.compute_rounds = rounds;
        self.ops_per_round = ops_per_round;
        self.think = think;
        self.write_fraction = write_fraction;
        self
    }

    fn build(self) -> WorkloadSpec {
        let spec = WorkloadSpec {
            name: self.name,
            threads: self.threads,
            regions: self.regions,
            ops_per_round: self.ops_per_round,
            compute_rounds: self.compute_rounds,
            think_cycles_per_op: self.think,
            write_fraction: self.write_fraction,
            phases: Vec::new(),
            mlp: self.mlp,
        };
        spec.validate();
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_validates_on_both_machines() {
        for machine in [MachineSpec::machine_a(), MachineSpec::machine_b()] {
            for &b in Benchmark::all() {
                let spec = b.spec(&machine);
                spec.validate(); // panics on failure
                assert_eq!(spec.threads, machine.total_cores());
                assert!(spec.footprint_bytes() > 0);
            }
        }
    }

    #[test]
    fn affected_and_unaffected_partition_the_figure_one_set() {
        let mut all: Vec<&str> = Benchmark::numa_affected()
            .iter()
            .chain(Benchmark::numa_unaffected())
            .map(|b| b.name())
            .collect();
        all.sort_unstable();
        let mut fig1: Vec<&str> = Benchmark::all()
            .iter()
            .filter(|b| **b != Benchmark::Streamcluster)
            .map(|b| b.name())
            .collect();
        fig1.sort_unstable();
        assert_eq!(all, fig1);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Benchmark::CgD.name(), "CG.D");
        assert_eq!(Benchmark::Ssca.to_string(), "SSCA.20");
        assert_eq!(Benchmark::all().len(), 20);
    }

    #[test]
    fn hot_page_benchmark_has_hotspots() {
        let spec = Benchmark::CgD.spec(&MachineSpec::machine_a());
        assert!(spec
            .regions
            .iter()
            .any(|r| matches!(r.pattern, AccessPattern::Hotspots { .. })));
    }

    #[test]
    fn false_sharing_benchmark_interleaves_below_2m() {
        let spec = Benchmark::UaB.spec(&MachineSpec::machine_b());
        assert!(spec.regions.iter().any(|r| matches!(
            r.pattern,
            AccessPattern::InterleavedChunks { chunk_bytes, .. } if chunk_bytes < (2 << 20)
        )));
    }

    #[test]
    fn streamcluster_fits_in_one_giant_page() {
        let spec = Benchmark::Streamcluster.spec(&MachineSpec::machine_a());
        for r in &spec.regions {
            assert!(r.bytes <= 1 << 30);
        }
    }
}
