//! Structural and statistical tests over the calibrated benchmark suite.

use numa_topology::MachineSpec;
use workloads::{AccessPattern, Benchmark, WorkloadGen};

#[test]
fn every_benchmark_generates_in_bounds_addresses() {
    let machine = MachineSpec::machine_a();
    for &b in Benchmark::all() {
        let spec = b.spec(&machine);
        let mut gen = WorkloadGen::new(&spec, 123);
        for t in 0..spec.threads {
            for _ in 0..500 {
                let op = gen.next_op(t);
                let inside = spec
                    .regions
                    .iter()
                    .any(|r| op.vaddr >= r.base && op.vaddr < r.base + r.bytes);
                assert!(inside, "{}: {:#x} out of bounds", b.name(), op.vaddr);
            }
        }
    }
}

#[test]
fn every_benchmark_has_a_finite_round_budget() {
    for machine in [MachineSpec::machine_a(), MachineSpec::machine_b()] {
        for &b in Benchmark::all() {
            let spec = b.spec(&machine);
            let gen = WorkloadGen::new(&spec, 1);
            assert!(gen.total_rounds() > 0, "{}", b.name());
            assert!(
                gen.total_rounds() < 500,
                "{}: {} rounds is excessive",
                b.name(),
                gen.total_rounds()
            );
        }
    }
}

#[test]
fn sliced_regions_do_not_straddle_huge_pages() {
    // The per-thread-sized private/stream regions must slice on 2 MiB
    // boundaries so a huge page never spans two threads' data (real NAS
    // slices are hundreds of MiB; straddling is an artifact of scaling
    // that the suite must avoid).
    // Only the NUMA-clean benchmarks must avoid straddling entirely; the
    // affected ones (LU, UA, wrmem, SSCA, SPECjbb) straddle on purpose —
    // that mild page sharing is part of their calibrated profile.
    for machine in [MachineSpec::machine_a(), MachineSpec::machine_b()] {
        let threads = machine.total_cores() as u64;
        for &b in Benchmark::numa_unaffected() {
            let spec = b.spec(&machine);
            for r in &spec.regions {
                let sliced = matches!(
                    r.pattern,
                    AccessPattern::PrivateSlices
                        | AccessPattern::PrivateBlocked { .. }
                        | AccessPattern::Stream { .. }
                );
                if sliced && r.bytes >= threads * (2 << 20) {
                    let slice = r.bytes.div_ceil(threads);
                    assert_eq!(
                        slice % (2 << 20),
                        0,
                        "{}: slice {} not a 2 MiB multiple",
                        b.name(),
                        slice
                    );
                }
            }
        }
    }
}

#[test]
fn alloc_phase_covers_the_whole_footprint_exactly_once() {
    let machine = MachineSpec::machine_a();
    for &b in [Benchmark::CgD, Benchmark::Ssca, Benchmark::Wc].iter() {
        let spec = b.spec(&machine);
        let mut gen = WorkloadGen::new(&spec, 5);
        let mut seen = std::collections::HashSet::new();
        for &v in gen.prelude() {
            assert!(seen.insert(v), "{}: prelude touches {v:#x} twice", b.name());
        }
        for t in 0..spec.threads {
            while gen.in_alloc_phase(t) {
                let op = gen.next_op(t);
                assert!(
                    seen.insert(op.vaddr),
                    "{}: page {:#x} first-touched twice",
                    b.name(),
                    op.vaddr
                );
            }
        }
        assert_eq!(
            seen.len() as u64,
            spec.footprint_pages(),
            "{}: alloc coverage mismatch",
            b.name()
        );
    }
}

#[test]
fn header_benchmarks_have_loader_preludes() {
    let machine = MachineSpec::machine_a();
    for &(b, expect) in &[
        (Benchmark::Ssca, true),
        (Benchmark::SpecJbb, true),
        (Benchmark::Pca, true), // full skew also runs in the prelude
        (Benchmark::BtB, false),
        (Benchmark::UaC, false),
    ] {
        let spec = b.spec(&machine);
        let gen = WorkloadGen::new(&spec, 9);
        assert_eq!(
            !gen.prelude().is_empty(),
            expect,
            "{}: prelude presence",
            b.name()
        );
    }
}

#[test]
fn interleaved_benchmarks_share_pages_only_at_huge_granularity() {
    // For UA: ownership of any 4 KiB page is unique to one thread, while a
    // 2 MiB range mixes many owners — the definition of page-level false
    // sharing.
    let machine = MachineSpec::machine_a();
    let spec = Benchmark::UaB.spec(&machine);
    let mut gen = WorkloadGen::new(&spec, 3);
    let interleaved = spec
        .regions
        .iter()
        .find(|r| matches!(r.pattern, AccessPattern::InterleavedChunks { .. }))
        .expect("UA has an interleaved region");

    let mut owner_of_4k: std::collections::HashMap<u64, usize> = Default::default();
    let mut owners_of_2m: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
        Default::default();
    for t in 0..spec.threads {
        while gen.in_alloc_phase(t) {
            gen.next_op(t);
        }
    }
    for t in 0..spec.threads {
        for _ in 0..2000 {
            let op = gen.next_op(t);
            if op.vaddr >= interleaved.base && op.vaddr < interleaved.base + interleaved.bytes {
                let p4k = op.vaddr & !0xfff;
                let p2m = op.vaddr & !((2u64 << 20) - 1);
                let prev = owner_of_4k.insert(p4k, t);
                assert!(
                    prev.is_none() || prev == Some(t),
                    "4 KiB page {p4k:#x} accessed by two threads"
                );
                owners_of_2m.entry(p2m).or_default().insert(t);
            }
        }
    }
    let max_owners = owners_of_2m.values().map(|s| s.len()).max().unwrap_or(0);
    assert!(
        max_owners >= 8,
        "2 MiB ranges must mix many owners, got {max_owners}"
    );
}

#[test]
fn benchmark_lookup_by_name_is_total() {
    for &b in Benchmark::all() {
        let found = Benchmark::all()
            .iter()
            .find(|x| x.name() == b.name())
            .copied();
        assert_eq!(found, Some(b));
    }
}
