//! Exploring Algorithm 1's thresholds (a small ablation study).
//!
//! Sweeps the reactive component's two LAR-gain thresholds on the UA-style
//! false-sharing workload and prints how the choice affects runtime —
//! the design-choice discussion of Section 3.2.1 ("both thresholds were
//! relatively easy to tune") made runnable.
//!
//! ```sh
//! cargo run --release --example policy_tuning
//! ```

use carrefour_lp::prelude::*;

fn main() {
    let machine = MachineSpec::machine_a();
    let spec = Benchmark::UaB.spec(&machine);
    let huge = SimConfig::for_machine(&machine, ThpControls::thp());
    let base = {
        let small = SimConfig::for_machine(&machine, ThpControls::small_only());
        Simulation::run(&machine, &spec, &small, &mut NullPolicy)
    };

    println!(
        "UA.B on {}: Carrefour-LP improvement over Linux for threshold pairs\n",
        machine.name()
    );
    println!(
        "{:>22} {:>12} {:>12} {:>12}",
        "split-gain threshold:", "2.5pp", "5pp (paper)", "50pp"
    );
    for carrefour_gain in [5.0, 15.0, 90.0] {
        let mut row = format!("carrefour-gain {carrefour_gain:>5.1}pp");
        for split_gain in [2.5, 5.0, 50.0] {
            let thresholds = LpThresholds {
                carrefour_gain_pp: carrefour_gain,
                split_gain_pp: split_gain,
                ..LpThresholds::default()
            };
            let mut policy = CarrefourLp::new().with_thresholds(thresholds);
            let r = Simulation::run(&machine, &spec, &huge, &mut policy);
            row.push_str(&format!(" {:>11.1}%", r.improvement_over(&base)));
        }
        println!("{row}");
    }

    println!(
        "\nWith any split-gain threshold below the (large) predicted gain, \
         the falsely-shared pages are split and locality recovers; a huge \
         threshold suppresses splitting and the policy degenerates to \
         Carrefour-2M. The carrefour-gain row barely matters here because \
         migration alone is never predicted to help a falsely-shared page — \
         exactly why the paper made splitting a separate decision."
    );
}
