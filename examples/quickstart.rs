//! Quickstart: run one benchmark under the four main systems and print a
//! Figure-1-style comparison.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark-name]
//! ```

use carrefour_lp::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "CG.D".to_string());
    let bench = Benchmark::all()
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name}; available:");
            for b in Benchmark::all() {
                eprintln!("  {}", b.name());
            }
            std::process::exit(1);
        });

    let machine = MachineSpec::machine_a();
    let spec = bench.spec(&machine);
    println!(
        "{} on {}: {} threads, {} MiB footprint",
        bench.name(),
        machine.name(),
        spec.threads,
        spec.footprint_bytes() >> 20
    );

    // Baseline: default Linux with 4 KiB pages.
    let linux4k = SimConfig::for_machine(&machine, ThpControls::small_only());
    let base = Simulation::run(&machine, &spec, &linux4k, &mut NullPolicy);
    println!(
        "\n{:<14} {:>12} {:>9} {:>7} {:>11}",
        "system", "runtime(ms)", "vs Linux", "LAR", "imbalance"
    );
    let report = |label: &str, r: &SimResult| {
        println!(
            "{:<14} {:>12.2} {:>+8.1}% {:>6.0}% {:>10.1}%",
            label,
            r.runtime_ms,
            r.improvement_over(&base),
            r.lifetime.lar * 100.0,
            r.lifetime.imbalance
        );
    };
    report("Linux", &base);

    let thp = SimConfig::for_machine(&machine, ThpControls::thp());
    let r = Simulation::run(&machine, &spec, &thp, &mut NullPolicy);
    report("THP", &r);

    let r = Simulation::run(&machine, &spec, &thp, &mut Carrefour::new());
    report("Carrefour-2M", &r);

    let r = Simulation::run(&machine, &spec, &thp, &mut CarrefourLp::new());
    report("Carrefour-LP", &r);
}
