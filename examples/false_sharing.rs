//! Page-level false sharing, from first principles.
//!
//! Builds a minimal UA-like workload: threads own 8 KiB chunks dealt
//! round-robin, so each thread's data is page-private under 4 KiB pages but
//! every 2 MiB page holds chunks of dozens of threads. The local access
//! ratio collapses under THP, Carrefour-2M can only interleave the shared
//! huge pages, and Carrefour-LP recovers locality by splitting them and
//! migrating the sub-pages to their owners (Section 3.1 of the paper).
//!
//! ```sh
//! cargo run --release --example false_sharing
//! ```

use carrefour_lp::prelude::*;

fn falsely_shared_workload(machine: &MachineSpec) -> WorkloadSpec {
    WorkloadSpec {
        name: "false-sharing".into(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: 64 << 30,
            bytes: 32 << 20,
            share: 1.0,
            pattern: AccessPattern::InterleavedChunks {
                chunk_bytes: 8192,
                dwell_ops: 60,
            },
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 1000,
        compute_rounds: 60,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

fn main() {
    let machine = MachineSpec::machine_b();
    let spec = falsely_shared_workload(&machine);

    let small = SimConfig::for_machine(&machine, ThpControls::small_only());
    let huge = SimConfig::for_machine(&machine, ThpControls::thp());

    let base = Simulation::run(&machine, &spec, &small, &mut NullPolicy);
    let thp = Simulation::run(&machine, &spec, &huge, &mut NullPolicy);
    let c2m = Simulation::run(&machine, &spec, &huge, &mut Carrefour::new());
    let lp = Simulation::run(&machine, &spec, &huge, &mut CarrefourLp::new());

    println!("page-level false sharing on {}:\n", machine.name());
    println!(
        "{:<14} {:>9} {:>6} {:>6} {:>7} {:>11}",
        "system", "vs Linux", "LAR%", "PSP%", "splits", "migrations"
    );
    for (label, r) in [
        ("Linux-4K", &base),
        ("THP", &thp),
        ("Carrefour-2M", &c2m),
        ("Carrefour-LP", &lp),
    ] {
        println!(
            "{:<14} {:>+8.1}% {:>6.0} {:>6.1} {:>7} {:>11}",
            label,
            r.improvement_over(&base),
            r.lifetime.lar * 100.0,
            r.pages.psp,
            r.lifetime.vmem.splits,
            r.lifetime.vmem.migrations_4k + r.lifetime.vmem.migrations_2m,
        );
    }

    println!(
        "\nThe PSP column is the paper's \"percentage of accesses to shared \
         pages\": near zero under 4 KiB pages (each chunk's pages are \
         private) and large under 2 MiB pages (each huge page spans many \
         threads' chunks). Threads do not share data — only pages."
    );
}
