//! The hot-page effect, from first principles.
//!
//! Builds a minimal CG-like workload: a handful of extremely hot 4 KiB
//! chunks spaced so that under 4 KiB pages they spread across every node's
//! first-touchers, while under 2 MiB pages they coalesce into fewer hot
//! pages than the machine has nodes — which no migration policy can
//! balance (Section 2 of the paper). Shows Carrefour-2M failing and
//! Carrefour-LP recovering by splitting the hot pages.
//!
//! ```sh
//! cargo run --release --example hot_page_effect
//! ```

use carrefour_lp::prelude::*;

fn hot_workload(machine: &MachineSpec) -> WorkloadSpec {
    let threads = machine.total_cores();
    WorkloadSpec {
        name: "hot-pages".into(),
        threads,
        regions: vec![
            // 16 hot 4 KiB chunks, 256 KiB apart: 4 MiB = two 2 MiB pages.
            RegionSpec {
                base: 64 << 30,
                bytes: 4 << 20,
                share: 0.8,
                pattern: AccessPattern::Hotspots {
                    count: 16,
                    hot_bytes: 4096,
                    spacing_bytes: 256 * 1024,
                    hot_share: 0.95,
                },
                alloc_skew: 0.0,
                loader_headers: 0.5, // the loader writes the headers first
                rw_shared: true,     // the hot data is a shared reduction
                read_only: false,
            },
            // Some private per-thread state so the workload is realistic.
            RegionSpec {
                base: 66 << 30,
                bytes: (threads as u64) << 21,
                share: 0.2,
                pattern: AccessPattern::PrivateSlices,
                alloc_skew: 0.0,
                loader_headers: 0.0,
                rw_shared: false,
                read_only: false,
            },
        ],
        ops_per_round: 1000,
        compute_rounds: 40,
        think_cycles_per_op: 5,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 4,
    }
}

fn main() {
    let machine = MachineSpec::machine_b();
    let spec = hot_workload(&machine);

    let small = SimConfig::for_machine(&machine, ThpControls::small_only());
    let huge = SimConfig::for_machine(&machine, ThpControls::thp());

    let base = Simulation::run(&machine, &spec, &small, &mut NullPolicy);
    let thp = Simulation::run(&machine, &spec, &huge, &mut NullPolicy);
    let c2m = Simulation::run(&machine, &spec, &huge, &mut Carrefour::new());
    let lp = Simulation::run(&machine, &spec, &huge, &mut CarrefourLp::new());

    println!(
        "hot-page effect on {} ({} nodes):\n",
        machine.name(),
        machine.num_nodes()
    );
    println!(
        "{:<14} {:>9} {:>11} {:>6} {:>7} {:>7}",
        "system", "vs Linux", "imbalance%", "NHP", "PAMUP%", "splits"
    );
    for (label, r) in [
        ("Linux-4K", &base),
        ("THP", &thp),
        ("Carrefour-2M", &c2m),
        ("Carrefour-LP", &lp),
    ] {
        println!(
            "{:<14} {:>+8.1}% {:>11.1} {:>6} {:>7.1} {:>7}",
            label,
            r.improvement_over(&base),
            r.lifetime.imbalance,
            r.pages.nhp,
            r.pages.pamup,
            r.lifetime.vmem.splits,
        );
    }

    println!(
        "\nUnder 4 KiB pages the 16 hot chunks spread over the nodes; under \
         2 MiB pages they coalesce into {} hot pages (NHP above). Migration \
         cannot balance fewer hot pages than nodes — only Carrefour-LP's \
         splitting restores the balance.",
        thp.pages.nhp
    );
}
