//! Golden-run regression test.
//!
//! Recomputes the trace digest of every pinned golden cell (see
//! `carrefour_bench::golden::GOLDEN_CELLS`) and diffs it against the
//! checked-in copy in `tests/golden/`. Any behavioural drift in the
//! simulator — an extra migration, a split shifted by an epoch, a
//! changed counter value — changes an epoch's rolling hash and fails
//! this test with a report naming the first divergent epoch.
//!
//! If the change is intentional, re-bless with
//! `cargo run --release --bin trace -- --bless` (policy in DESIGN.md §9).
//! On failure the reports are also written to
//! `results/golden_divergence.txt` so CI can upload them as an artifact.

use carrefour_bench::golden::{golden_dir, verify};

#[test]
fn golden_traces_match_checked_in_digests() {
    let dir = golden_dir();
    let reports = verify(&dir);
    if reports.is_empty() {
        return;
    }
    let body = reports.join("\n\n");
    // Best-effort artifact for CI; the assert below carries the report
    // regardless.
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/golden_divergence.txt", &body);
    panic!(
        "{} golden cell(s) diverged from {}:\n\n{}\n\n\
         If this change is intentional, re-bless with\n\
         `cargo run --release --bin trace -- --bless` (see DESIGN.md §9).",
        reports.len(),
        dir.display(),
        body
    );
}
