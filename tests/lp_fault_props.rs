//! End-to-end property tests: the full Carrefour-LP policy under random
//! fault plans. The run must complete, hold the vmem invariants each
//! epoch, and the zero-rate corner must be bit-identical to a run with
//! no fault layer configured at all.

use carrefour_lp::prelude::*;
use proptest::prelude::*;

fn small_spec(machine: &MachineSpec) -> WorkloadSpec {
    WorkloadSpec {
        name: "lp-fault-props".into(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: 64 << 30,
            bytes: 6 << 20,
            share: 1.0,
            pattern: AccessPattern::SharedUniform,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 200,
        compute_rounds: 6,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

fn run_lp(machine: &MachineSpec, faults: FaultConfig, validate: bool) -> SimResult {
    let spec = small_spec(machine);
    let mut config = SimConfig::for_machine(machine, vmem::ThpControls::thp());
    config.faults = faults;
    config.validate_each_epoch = validate;
    let mut policy = CarrefourLp::new();
    Simulation::run(machine, &spec, &config, &mut policy)
}

proptest! {
    /// Carrefour-LP completes under arbitrary operational + corruption
    /// fault mixes without panicking or corrupting page tables.
    #[test]
    fn carrefour_lp_survives_random_fault_plans(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.7,
        corruption in 0.0f64..0.2,
    ) {
        let machine = MachineSpec::test_machine();
        let mut faults = FaultConfig::uniform(seed, rate);
        faults.rates.sample_misattribution = corruption;
        let r = run_lp(&machine, faults, true);
        prop_assert!(r.runtime_cycles > 0);
        // Retries never exceed what was attempted across the run: each
        // failed action re-enters the queue a bounded number of times.
        let failed = r.robustness.failed_actions();
        prop_assert!(
            r.robustness.retries <= failed * 3,
            "{} retries for {} failures",
            r.robustness.retries,
            failed
        );
    }

    /// Zero-rate fault plans with arbitrary seeds are bit-identical to no
    /// fault layer at all: the seed must not leak into the simulation.
    #[test]
    fn zero_rate_plans_never_perturb_the_run(seed in 0u64..=u64::MAX) {
        let machine = MachineSpec::test_machine();
        let baseline = run_lp(&machine, FaultConfig::none(), false);
        let seeded = run_lp(&machine, FaultConfig::uniform(seed, 0.0), false);
        prop_assert_eq!(baseline.runtime_cycles, seeded.runtime_cycles);
        prop_assert_eq!(baseline.robustness, seeded.robustness);
        prop_assert_eq!(baseline.epochs.len(), seeded.epochs.len());
    }
}
