//! Property tests for NUMA-homed page tables (DESIGN.md §13): replica
//! coherence under random operation sequences, and the full Mitosis /
//! numaPTE policies surviving random fault plans.
//!
//! The central invariant: table replication and migration move *table*
//! frames only. Whatever sequence of faults, splits, collapses, data
//! migrations, table sweeps and table moves runs, a walk resolved
//! through any node's replica must reference the same entry offset as
//! the primary walk and end at the same leaf translation, and
//! `AddressSpace::validate` must hold (no dangling replica frames).

use carrefour_lp::prelude::*;
use numa_topology::Interconnect;
use proptest::prelude::*;
use vmem::{AddressSpace, VmemConfig, PAGE_4K};

const BASE: u64 = 64 << 30;
const REGION_BYTES: u64 = 8 << 20;
const NODES: u16 = 4;

fn machine() -> MachineSpec {
    MachineSpec::homogeneous(
        "table-props",
        2.0,
        4,
        2,
        4 << 30,
        Interconnect::full_mesh(4),
    )
}

/// Applies the `i`-th random mutation drawn from `rng`. Individual ops
/// may legitimately fail (unmapped, already split, wrong size, busy
/// allocator); the property is about what the *space* guarantees
/// afterwards, not about any op succeeding.
fn apply_random_op(space: &mut AddressSpace, rng: &mut CaseRng) {
    let off = rng.next_u64() % REGION_BYTES;
    let node = NodeId((rng.next_u64() % u64::from(NODES)) as u16);
    match rng.next_u64() % 13 {
        0..=3 => {
            let _ = space.fault(VirtAddr(BASE + off), node);
        }
        4 | 5 => {
            let _ = space.split(VirtAddr(BASE + off));
        }
        6 => {
            let vbase = (BASE + off) & !((2u64 << 20) - 1);
            let _ = space.collapse(VirtAddr(vbase), node);
        }
        7 | 8 => {
            let _ = space.migrate(VirtAddr(BASE + off), node);
        }
        9 | 10 => {
            space.replicate_tables(usize::from(NODES));
        }
        _ => {
            let _ = space.migrate_table(VirtAddr(BASE + off), node);
        }
    }
}

/// Checks walk/replica coherence for every mapped leaf from every node.
fn assert_coherent(space: &AddressSpace) {
    space.validate().expect("space invariants");
    for leaf in space.leaves() {
        let walk = space.walk(leaf.vbase);
        let mapping = walk.mapping.expect("leaf must stay walkable");
        assert_eq!(mapping.frame, leaf.frame, "walk and leaf list disagree");
        for n in 0..NODES {
            let node = NodeId(n);
            for &step in walk.steps() {
                let resolved = space.resolve_table_step(step, node);
                // Same entry offset inside the (possibly replicated)
                // table frame: the replica is a byte-for-byte copy.
                assert_eq!(
                    resolved.pte_addr.0 & (PAGE_4K - 1),
                    step.pte_addr.0 & (PAGE_4K - 1),
                    "replica resolution moved the entry offset"
                );
                // A substituted step reads a frame local to the walker.
                if resolved.pte_addr != step.pte_addr {
                    assert_eq!(resolved.node, node, "replica step must be local");
                }
            }
            // The translation is node-independent: replicas redirect
            // table reads, never the leaf the walk resolves to.
            let through = space.translate(leaf.vbase).expect("translate");
            assert_eq!(through.frame, mapping.frame);
            assert_eq!(through.node, mapping.node);
        }
    }
}

proptest! {
    /// Any op sequence leaves every node's replica walk coherent with
    /// the primary, and never dangles a replica frame.
    #[test]
    fn replica_walks_stay_coherent(seed in 0u64..=u64::MAX, len in 8u64..48) {
        let mut space = AddressSpace::new(&machine(), VmemConfig::default());
        space.map_region(BASE, REGION_BYTES).unwrap();
        let mut rng = CaseRng::new("replica_walks_ops", seed);
        for i in 0..len {
            apply_random_op(&mut space, &mut rng);
            // Full coherence sweeps are quadratic-ish; probing a few
            // interior points plus the final state keeps cases fast
            // while still catching mid-sequence dangles.
            if i % 16 == 15 {
                assert_coherent(&space);
            }
        }
        assert_coherent(&space);

        // Teardown check: migrating every region's table after heavy
        // replication must retire the moved primaries' replica sets.
        space.replicate_tables(usize::from(NODES));
        for region in 0..(REGION_BYTES >> 21) {
            let _ = space.migrate_table(VirtAddr(BASE + (region << 21)), NodeId(3));
        }
        assert_coherent(&space);
    }
}

fn small_spec(machine: &MachineSpec) -> WorkloadSpec {
    WorkloadSpec {
        name: "table-props".into(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes: 6 << 20,
            share: 1.0,
            pattern: AccessPattern::SharedUniform,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 200,
        compute_rounds: 6,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

fn run_policy(
    machine: &MachineSpec,
    faults: FaultConfig,
    policy: &mut dyn NumaPolicy,
) -> SimResult {
    let spec = small_spec(machine);
    let mut config = SimConfig::for_machine(machine, vmem::ThpControls::small_only());
    config.faults = faults;
    config.validate_each_epoch = true;
    Simulation::run(machine, &spec, &config, policy)
}

proptest! {
    /// Mitosis completes under arbitrary fault mixes with per-epoch
    /// validation on: replication alloc failures degrade to primary
    /// walks, never to a corrupt space.
    #[test]
    fn mitosis_survives_random_fault_plans(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.7,
    ) {
        let machine = MachineSpec::test_machine();
        let mut policy = Mitosis::new();
        let r = run_policy(&machine, FaultConfig::uniform(seed, rate), &mut policy);
        prop_assert!(r.runtime_cycles > 0);
        prop_assert!(
            r.lifetime.vmem.table_replications > 0,
            "a multi-node run must replicate at least the root"
        );
    }

    /// numaPTE completes under arbitrary fault mixes with per-epoch
    /// validation on; busy-pinned table migrations surface as failed
    /// actions, not as corruption.
    #[test]
    fn numapte_survives_random_fault_plans(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.7,
    ) {
        let machine = MachineSpec::test_machine();
        let mut policy = NumaPte::new();
        let r = run_policy(&machine, FaultConfig::uniform(seed, rate), &mut policy);
        prop_assert!(r.runtime_cycles > 0);
    }
}
