//! No-op equivalence pins for the page-table placement policies
//! (DESIGN.md §13).
//!
//! On a 1-node machine neither Mitosis nor numaPTE can do anything:
//! every walk step is local, replication is explicitly inert, and no
//! sample ever reports a remote walk step. These tests pin that corner
//! bit-identically — same `SimResult` (including the attribution
//! ledger) and same trace digest as default Linux — so the table-homing
//! machinery provably costs nothing when it has nothing to do. They are
//! the single-machine analogue of the golden-digest seed pins, which
//! freeze the multi-node behaviour of the pre-existing policies.

use carrefour_lp::prelude::*;
use numa_topology::Interconnect;

const BASE: u64 = 64 << 30;

fn one_node_machine() -> MachineSpec {
    MachineSpec::homogeneous("uma-1", 2.0, 1, 4, 8 << 30, Interconnect::full_mesh(1))
}

fn spec(machine: &MachineSpec) -> WorkloadSpec {
    WorkloadSpec {
        name: "table-equivalence".into(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes: 8 << 20,
            share: 1.0,
            pattern: AccessPattern::SharedUniform,
            alloc_skew: 0.0,
            loader_headers: 0.1,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 300,
        compute_rounds: 8,
        think_cycles_per_op: 12,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

/// Runs one policy on the 1-node machine with the attribution ledger on,
/// normalizing the policy name so results compare fieldwise.
fn run_one_node(policy: &mut dyn NumaPolicy) -> SimResult {
    let machine = one_node_machine();
    let spec = spec(&machine);
    let mut config = SimConfig::for_machine(&machine, ThpControls::small_only());
    config.attribution = true;
    let mut r = Simulation::run(&machine, &spec, &config, policy);
    r.policy = String::new();
    r
}

/// Same run, traced: the full event stream, minus the `RunStart` header
/// (which names the policy and so differs by construction). Everything
/// after it — every fault, action, epoch close — must match exactly.
fn events_one_node(policy: &mut dyn NumaPolicy) -> Vec<TraceEvent> {
    let machine = one_node_machine();
    let spec = spec(&machine);
    let config = SimConfig::for_machine(&machine, ThpControls::small_only());
    let mut sink = VecSink::new();
    Simulation::run_traced(&machine, &spec, &config, policy, &mut sink);
    let mut events = sink.events;
    assert!(matches!(events.first(), Some(TraceEvent::RunStart { .. })));
    events.remove(0);
    events
}

#[test]
fn mitosis_on_one_node_is_bit_identical_to_linux() {
    let linux = run_one_node(&mut NullPolicy);
    let mitosis = run_one_node(&mut Mitosis::new());
    assert_eq!(linux, mitosis);
    let a = mitosis.attribution.as_ref().expect("ledger on");
    assert!(a.conserves(mitosis.runtime_cycles));
    assert_eq!(a.total.walk_remote_cycles(), 0, "1 node: no remote walks");
    assert_eq!(mitosis.lifetime.vmem.table_replications, 0);
}

#[test]
fn numapte_on_one_node_is_bit_identical_to_linux() {
    let linux = run_one_node(&mut NullPolicy);
    let numapte = run_one_node(&mut NumaPte::new());
    assert_eq!(linux, numapte);
    assert_eq!(numapte.lifetime.vmem.table_migrations, 0);
}

#[test]
fn one_node_trace_events_match_linux_exactly() {
    let linux = events_one_node(&mut NullPolicy);
    let mitosis = events_one_node(&mut Mitosis::new());
    let numapte = events_one_node(&mut NumaPte::new());
    assert_eq!(linux, mitosis);
    assert_eq!(linux, numapte);
}

/// Multi-node sanity for the *pre-existing* policies: table homing is
/// always on now, so this pins that a policy which never issues table
/// actions pays none of the new costs — no replications, no table
/// migrations, and an attribution ledger that still conserves exactly.
#[test]
fn existing_policies_pay_no_table_costs() {
    let machine = MachineSpec::test_machine();
    let spec = spec(&machine);
    let mut config = SimConfig::for_machine(&machine, ThpControls::thp());
    config.attribution = true;
    for policy in [
        &mut NullPolicy as &mut dyn NumaPolicy,
        &mut Carrefour::new(),
        &mut CarrefourLp::new(),
    ] {
        let r = Simulation::run(&machine, &spec, &config, policy);
        assert_eq!(r.lifetime.vmem.table_replications, 0, "{}", r.policy);
        assert_eq!(r.lifetime.vmem.table_migrations, 0, "{}", r.policy);
        let a = r.attribution.as_ref().expect("ledger on");
        assert!(a.conserves(r.runtime_cycles), "{}", r.policy);
    }
}

/// Mitosis on a real multi-node machine must actually engage — this is
/// the counterpart proving the 1-node pins above are not vacuous.
#[test]
fn mitosis_engages_on_multi_node_machines() {
    let machine = MachineSpec::test_machine();
    let spec = spec(&machine);
    let mut config = SimConfig::for_machine(&machine, ThpControls::small_only());
    config.attribution = true;
    let r = Simulation::run(&machine, &spec, &config, &mut Mitosis::new());
    assert!(r.lifetime.vmem.table_replications > 0);
    let a = r.attribution.as_ref().expect("ledger on");
    assert!(a.conserves(r.runtime_cycles));
}
