//! Attribution over the golden cells: conservation and non-perturbation.
//!
//! Tier-1 guarantee for the cycle-attribution ledger (DESIGN.md §11),
//! checked on all ten pinned golden configurations (UA.B and CG.D under
//! Linux, THP, Carrefour-LP, Mitosis, and numaPTE on machine A):
//!
//! 1. **Conservation** — with attribution on, the ledger's buckets sum
//!    to `runtime_cycles` exactly, as integers, and every epoch's wall
//!    breakdown reproduces that epoch's cycle counter.
//! 2. **Non-perturbation** — an attributed run's trace digest still
//!    matches the checked-in golden, byte for byte: turning the ledger on
//!    changes no event, no counter, no cycle of any existing output.

use carrefour_bench::golden::{golden_dir, GOLDEN_CELLS};
use carrefour_bench::{attrib, runner, PolicyKind};
use engine::{DigestSink, SimConfig, Simulation, TraceDigest};
use numa_topology::MachineSpec;
use workloads::Benchmark;

#[test]
fn attributed_golden_runs_conserve_and_match_digests() {
    let machine = MachineSpec::machine_a();
    let dir = golden_dir();
    let jobs = runner::resolve_jobs(None);
    let rows = runner::par_map(jobs, GOLDEN_CELLS.len(), |i| {
        let cell = GOLDEN_CELLS[i];
        let mut config = SimConfig::for_machine(&machine, cell.kind.initial_thp());
        config.attribution = true;
        let spec = cell.bench.spec(&machine);
        let mut policy = cell.kind.make();
        let mut sink = DigestSink::new();
        let result = Simulation::run_traced(&machine, &spec, &config, policy.as_mut(), &mut sink);
        let mut digest = sink.into_digest();
        digest.policy = cell.kind.label().to_string();
        digest.runtime_cycles = result.runtime_cycles;
        (cell, result, digest)
    });
    for (cell, result, digest) in rows {
        let name = format!("{}/{}", cell.bench.name(), cell.kind.label());
        let ledger = result
            .attribution
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: attribution was on but no ledger came back"));
        assert!(
            ledger.conserves(result.runtime_cycles),
            "{name}: buckets sum to {}, runtime is {} (diff {})",
            ledger.total.total(),
            result.runtime_cycles,
            ledger.total.total() as i128 - result.runtime_cycles as i128
        );
        for (e, rec) in ledger.epochs.iter().zip(&result.epochs) {
            let threads = e.cores.len().max(1) as u64;
            assert_eq!(
                e.wall.total(),
                rec.counters.epoch_cycles + rec.overhead_cycles / threads,
                "{name}: an epoch's wall breakdown diverged from its counter"
            );
        }
        let path = cell.path(&dir);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden {} ({e})", path.display()));
        let golden = TraceDigest::from_json(&text)
            .unwrap_or_else(|e| panic!("{name}: unparseable golden {} ({e})", path.display()));
        if let Some(diff) = golden.diff(&digest) {
            panic!(
                "{name}: attribution perturbed the simulation — the attributed \
                 run's digest no longer matches the checked-in golden:\n{diff}"
            );
        }
    }
}

/// The Mitosis acceptance bar (DESIGN.md §13): on the golden benchmarks,
/// the explain pipeline must attribute at least 90 % of the cycles
/// Mitosis *saves* relative to Linux to the remote-page-walk cause group
/// — replicating tables buys local walks and essentially nothing else.
#[test]
fn mitosis_delta_is_attributed_to_remote_walks() {
    let machine = MachineSpec::machine_a();
    for bench in [Benchmark::UaB, Benchmark::CgD] {
        let run = |kind: PolicyKind| {
            let mut config = SimConfig::for_machine(&machine, kind.initial_thp());
            config.attribution = true;
            let spec = bench.spec(&machine);
            let r = Simulation::run(&machine, &spec, &config, kind.make().as_mut());
            r.attribution.expect("ledger on").total
        };
        let linux = run(PolicyKind::Linux4k);
        let mitosis = run(PolicyKind::Mitosis);
        let groups = attrib::cause_groups(&linux, &mitosis);
        let savings: i128 = groups.iter().map(|g| g.delta().min(0)).sum();
        let remote = groups
            .iter()
            .find(|g| g.name.contains("remote page walks"))
            .unwrap_or_else(|| panic!("no remote-walk cause group in {groups:?}"));
        assert!(
            remote.delta() < 0,
            "{}: Mitosis must cut remote walk cycles (delta {})",
            bench.name(),
            remote.delta()
        );
        assert!(
            remote.delta() * 10 <= savings * 9,
            "{}: remote walks account for {} of {} saved cycles (< 90%)",
            bench.name(),
            -remote.delta(),
            -savings
        );
    }
}
