//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! `SmallRng` (implemented as xoshiro256++ seeded by splitmix64, the same
//! generator family the real crate uses on 64-bit targets), the
//! `Rng`/`RngCore`/`SeedableRng` traits, and uniform sampling over integer
//! ranges, floats, and booleans. The generator is deterministic across
//! platforms, which the simulator relies on for reproducible runs.
#![forbid(unsafe_code)]

/// Core trait: a source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point; the workspace only seeds from `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open integer ranges).
    ///
    /// Panics when the range is empty, matching the real crate.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Standard-distribution sampling for the handful of types the workspace
/// draws without an explicit range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that `Rng::random_range` can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one element uniformly.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // draw, far below anything the simulator can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty inclusive range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize);

impl SampleRange for core::ops::Range<i64> {
    type Output = i64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start.wrapping_add(hi as i64)
    }
}

pub mod rngs {
    //! Generator implementations.

    use super::{RngCore, SeedableRng};

    /// splitmix64 step, used for seed expansion.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// xoshiro256++: the small, fast generator `rand` uses for `SmallRng`
    /// on 64-bit platforms. Not cryptographically secure.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Returns the raw xoshiro256++ state, for checkpointing. Restoring
        /// it with [`SmallRng::from_state`] continues the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`SmallRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let n = r.random_range(0usize..4);
            assert!(n < 4);
            let s = r.random_range(0u16..512);
            assert!(s < 512);
        }
    }

    #[test]
    fn bool_probability_roughly_honored() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.random_bool(0.8)).count();
        assert!((7500..8500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn full_range_coverage_small_domain() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
