//! Offline vendored minimal replacement for the `criterion` benchmark
//! harness.
//!
//! Implements the subset of the API the workspace benches use —
//! `Criterion::bench_function`, `benchmark_group` + `sample_size` +
//! `finish`, `Bencher::iter`/`iter_batched`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros — with plain wall-clock
//! timing and a one-line report per benchmark. No statistics, plots, or
//! baselines: good enough to run the benches and eyeball relative cost,
//! and trivially swappable for the real crate when network access exists.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; the stub treats every variant the
/// same (setup is always excluded from timing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` excluding per-iteration `setup` cost.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!("{name:<48} {per_iter:>12.2?}/iter  ({} iters)", b.iters);
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.run_one(name, &mut f);
        self.criterion.sample_size = saved;
        self
    }

    /// Ends the group (report flushing is a no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a function that runs each listed benchmark with a fresh
/// default `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 10);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("probe", |b| {
                b.iter_batched(|| (), |()| runs += 1, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(runs, 3);
    }
}
