//! Offline vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as markers (all
//! actual serialization is hand-written JSON in the bench crate), so the
//! derives expand to nothing. Keeping them as real proc-macros means the
//! `#[derive(Serialize, Deserialize)]` attributes across the workspace
//! compile unchanged and can be pointed back at the real serde when the
//! build environment regains network access.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the marker trait has no items to implement,
/// and a blanket impl in `serde` covers every type. Registers the `serde`
/// helper attribute so field annotations like `#[serde(default)]` parse.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; see [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
