//! Offline vendored minimal replacement for `proptest`.
//!
//! Supports the subset the workspace tests use: the `proptest! { fn
//! name(arg in strategy, ...) { body } }` macro over integer/float range
//! strategies, plus `prop_assert!`/`prop_assert_eq!`. Each test runs
//! `PROPTEST_CASES` (default 32) deterministic cases — inputs derive from
//! a hash of the test name and the case index, so failures reproduce
//! exactly across runs and machines. No shrinking: the failing inputs are
//! printed instead, which for the plain scalar strategies here is enough
//! to re-run a case by hand.
#![forbid(unsafe_code)]

/// Deterministic per-case random source (splitmix64).
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    /// Builds the generator for `(test name, case index)`.
    pub fn new(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        CaseRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator usable on the right of `in` inside `proptest!`.
pub trait Strategy {
    /// Type of value produced.
    type Value;
    /// Draws one value for the current case.
    fn pick(&self, rng: &mut CaseRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut CaseRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).pick(rng)
            }
        }
    )*};
}

impl_int_strategy!(u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut CaseRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Fixed list of choices, sampled uniformly.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut CaseRng) -> T {
        self.0.clone()
    }
}

impl<T: Clone> Strategy for &[T] {
    type Value = T;
    fn pick(&self, rng: &mut CaseRng) -> T {
        assert!(!self.is_empty(), "empty choice slice");
        let idx = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
        self[idx].clone()
    }
}

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases()` deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = $crate::cases();
            for case in 0..cases {
                let mut rng = $crate::CaseRng::new(stringify!($name), case);
                $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {} failed at case {case} with {inputs}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.
    pub use crate::{cases, prop_assert, prop_assert_eq, proptest, CaseRng, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 5u64..10, y in 0u32..3, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn second_property_in_same_block(v in 0usize..4) {
            prop_assert!(v < 4);
        }
    }

    #[test]
    fn deterministic_inputs() {
        let mut a = CaseRng::new("t", 3);
        let mut b = CaseRng::new("t", 3);
        assert_eq!((0u64..100).pick(&mut a), (0u64..100).pick(&mut b));
    }
}
