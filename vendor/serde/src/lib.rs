//! Offline vendored stand-in for `serde`.
//!
//! `Serialize`/`Deserialize` are marker traits here: the workspace never
//! serializes through serde (the bench crate writes JSON by hand), it only
//! tags types so the public API keeps the same shape as with the real
//! crate. Blanket impls cover every type, so the no-op derives in
//! `serde_derive` and explicit trait bounds both keep compiling.
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for "this type is serializable"; no methods in the stub.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for "this type is deserializable"; no methods in the stub.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
